package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"copa/internal/mac"
	"copa/internal/medium"
	"copa/internal/obs"
	"copa/internal/precoding"
)

// FailCause classifies why an ITS exchange failed — the per-cause split
// behind copa.its.session_failures_* so /debug/metrics can attribute
// control-plane breakage.
type FailCause int

// The failure taxonomy: transport causes (timeout, CRC) are retryable
// and only become terminal when the retry budget runs out; protocol
// causes (req-build, leader-decision, ack-handle) abort immediately —
// retransmitting the same frame cannot fix missing CSI or an infeasible
// strategy.
const (
	CauseNone FailCause = iota
	CauseTimeout
	CauseCRC
	CauseReqBuild
	CauseLeaderDecision
	CauseAckHandle
)

// String names the cause the way the metrics do.
func (c FailCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseTimeout:
		return "timeout"
	case CauseCRC:
		return "crc"
	case CauseReqBuild:
		return "req-build"
	case CauseLeaderDecision:
		return "leader-decision"
	case CauseAckHandle:
		return "ack-handle"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// failCounter returns the per-cause terminal-failure counter.
func failCounter(c FailCause) *obs.Counter {
	switch c {
	case CauseTimeout:
		return mFailTimeout
	case CauseCRC:
		return mFailCRC
	case CauseReqBuild:
		return mFailReqBuild
	case CauseLeaderDecision:
		return mFailLeaderDecision
	case CauseAckHandle:
		return mFailAckHandle
	default:
		return nil
	}
}

// RetryPolicy bounds how hard the exchange engine pushes against a lossy
// medium before giving up and falling back to plain CSMA.
type RetryPolicy struct {
	// MaxTries is the attempt budget per leg (1 = no retries).
	MaxTries int
	// Backoff is the wait after the first failed try; it doubles per
	// retry (bounded exponential backoff) up to BackoffCap.
	Backoff time.Duration
	// BackoffCap bounds the doubling.
	BackoffCap time.Duration
	// TimeoutFloor clamps the airtime-derived per-leg timeouts; zero for
	// simulated media, hundreds of milliseconds for real sockets.
	TimeoutFloor time.Duration
}

// DefaultRetryPolicy mirrors DCF: the initial backoff is the mean
// initial contention wait, doubling per retry like a contention window,
// with four tries per leg before the exchange concedes the coherence
// time to CSMA.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxTries:   4,
		Backoff:    mac.MeanBackoff(),
		BackoffCap: time.Duration(mac.CWMax) * mac.SlotTime / 2,
	}
}

// backoff is the wait before retry number `retry` (1-based).
func (p RetryPolicy) backoff(retry int) time.Duration {
	b := p.Backoff
	for i := 1; i < retry; i++ {
		b *= 2
		if p.BackoffCap > 0 && b >= p.BackoffCap {
			return p.BackoffCap
		}
	}
	if p.BackoffCap > 0 && b > p.BackoffCap {
		b = p.BackoffCap
	}
	return b
}

// tries normalizes the attempt budget.
func (p RetryPolicy) tries() int {
	if p.MaxTries < 1 {
		return 1
	}
	return p.MaxTries
}

// ExchangeStats is the transport-level accounting of one exchange:
// retry-aware control bytes and airtime, and how (if) it failed.
type ExchangeStats struct {
	// ControlBytes counts every transmitted control byte, including
	// retransmissions — the retry-aware successor of the old
	// three-frame sum.
	ControlBytes int
	// Retries is the number of retransmission attempts beyond the first
	// try of each leg.
	Retries int
	// Airtime is the virtual time the exchange occupied the medium:
	// frame airtimes, SIFS turnarounds, timeout waits and backoffs.
	Airtime time.Duration
	// Fallback reports the retry budget was exhausted and the pair
	// reverted to plain CSMA for the rest of the coherence time.
	Fallback bool
	// Cause is the terminal failure classification (CauseNone on
	// success; the last leg's failure mode on fallback).
	Cause FailCause
}

// exchangeResult is the engine's full outcome.
type exchangeResult struct {
	ExchangeStats
	dec   *LeadDecision
	ack   *mac.ITSAck
	folTx *precoding.Transmission
}

// recvITS waits for a frame of the wanted type addressed to dst,
// discarding stale duplicates of other types (a lingering INIT while
// waiting for an ACK, say). The drain is bounded so a duplication storm
// cannot spin forever.
func recvITS(med medium.Medium, dst mac.Addr, timeout time.Duration, want mac.FrameType) ([]byte, error) {
	for i := 0; i < 8; i++ {
		data, err := med.Recv(dst, timeout)
		if err != nil {
			return nil, err
		}
		if t, ok := mac.FrameTypeOf(data); ok && t == want {
			return data, nil
		}
		// Wrong type or unrecognizable header: a stale duplicate or a
		// frame garbled beyond its magic — keep listening.
	}
	return nil, medium.ErrTimeout
}

// errExhausted marks a leg that ran out of tries (recorded in spans).
var errExhausted = errors.New("core: retry budget exhausted")

// runExchangeOverMedium drives one complete ITS exchange between lead
// and fol across med: INIT → REQ → ACK as real frames, with per-leg
// timeouts derived from mac airtimes, bounded exponential-backoff
// retries, and per-cause accounting. Transport failures that outlive the
// retry budget return a fallback result (nil error) — the caller
// degrades to CSMA; protocol failures return an error just as the
// pre-medium synchronous exchange did.
//
// The engine is single-threaded and leg-ordered, which works with both
// clock domains: simulated media answer Recv from their queues in
// virtual time, and blocking media (UDP) are driven instead by the
// split LeadExchange/FollowExchange role drivers.
//
// ctx carries trace identity only (never a deadline — timeouts are the
// medium's): under a sampled trace the REQ and ACK legs record
// hierarchical child spans with retry counts; otherwise they stay flat.
func runExchangeOverMedium(ctx context.Context, med medium.Medium, lead, fol *AP, airtimeUS uint32, now time.Duration, pol RetryPolicy) (*exchangeResult, error) {
	res := &exchangeResult{}
	tmo := mac.DefaultOverheadModel().ITSTimeouts().Clamp(pol.TimeoutFloor)
	initFrame := lead.BuildITSInit(airtimeUS)

	send := func(src, dst mac.Addr, frame []byte) {
		med.Send(src, dst, frame)
		res.ControlBytes += len(frame)
		res.Airtime += mac.FrameAirtime(len(frame), mac.ControlRateBps) + mac.SIFS
	}
	retry := func(try int, cause FailCause, wait time.Duration) FailCause {
		res.Airtime += wait
		if cause == CauseTimeout {
			mLegTimeouts.Inc()
		} else {
			mLegCRCDrops.Inc()
		}
		if try+1 < pol.tries() {
			res.Retries++
			res.Airtime += pol.backoff(try + 1)
			mRetries.Inc()
		}
		return cause
	}
	fallback := func(span exSpan, cause FailCause) (*exchangeResult, error) {
		span.SetAttr("cause", cause.String())
		span.EndErr(errExhausted)
		res.Fallback = true
		res.Cause = cause
		mSessionFailures.Inc()
		failCounter(cause).Inc()
		mFallbacks.Inc()
		return res, nil
	}
	abort := func(span exSpan, cause FailCause, err error) (*exchangeResult, error) {
		span.SetAttr("cause", cause.String())
		span.EndErr(err)
		res.Cause = cause
		mSessionFailures.Inc()
		failCounter(cause).Inc()
		return res, err
	}

	// Leg 1: INIT out, REQ back, decision made. The leader owns the
	// timer: a lost INIT, a garbled INIT (the follower stays silent), or
	// a lost/garbled REQ all look like a missing REQ and trigger an INIT
	// retransmission, which the follower answers idempotently.
	_, span := startExSpan(ctx, "its.leg.req")
	var dec *LeadDecision
	cause := CauseTimeout
	for try := 0; dec == nil; try++ {
		if try == pol.tries() {
			return fallback(span, cause)
		}
		send(lead.Addr, fol.Addr, initFrame)
		data, err := recvITS(med, fol.Addr, tmo.REQ, mac.TypeITSInit)
		if err != nil {
			cause = retry(try, CauseTimeout, tmo.REQ)
			continue
		}
		reqFrame, err := fol.BuildITSReq(data, now)
		if err != nil {
			if errors.Is(err, mac.ErrBadFrame) {
				cause = retry(try, CauseCRC, tmo.REQ)
				continue
			}
			return abort(span, CauseReqBuild, fmt.Errorf("follower REQ: %w", err))
		}
		send(fol.Addr, lead.Addr, reqFrame)
		got, err := recvITS(med, lead.Addr, tmo.REQ, mac.TypeITSReq)
		if err != nil {
			cause = retry(try, CauseTimeout, tmo.REQ)
			continue
		}
		d, err := lead.HandleITSReq(got, now)
		if err != nil {
			if errors.Is(err, mac.ErrBadFrame) {
				cause = retry(try, CauseCRC, 0)
				continue
			}
			return abort(span, CauseLeaderDecision, fmt.Errorf("leader decision: %w", err))
		}
		dec = d
	}
	span.SetAttr("retries", strconv.Itoa(res.Retries))
	span.End()

	// Leg 2: ACK out, applied at the follower. The leader retransmits
	// the verdict until the follower accepts it or the budget runs out.
	_, span = startExSpan(ctx, "its.leg.ack")
	cause = CauseTimeout
	for try := 0; ; try++ {
		if try == pol.tries() {
			return fallback(span, cause)
		}
		send(lead.Addr, fol.Addr, dec.Ack)
		data, err := recvITS(med, fol.Addr, tmo.ACK, mac.TypeITSAck)
		if err != nil {
			cause = retry(try, CauseTimeout, tmo.ACK)
			continue
		}
		ack, folTx, err := fol.HandleITSAck(data, now)
		if err != nil {
			if errors.Is(err, mac.ErrBadFrame) {
				cause = retry(try, CauseCRC, 0)
				continue
			}
			return abort(span, CauseAckHandle, fmt.Errorf("follower ACK: %w", err))
		}
		res.dec, res.ack, res.folTx = dec, ack, folTx
		span.End()
		return res, nil
	}
}
