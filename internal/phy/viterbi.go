package phy

import "math"

// ViterbiDecode runs soft-decision maximum-likelihood decoding of the
// rate-1/2 mother code over the depunctured LLR stream (llrs[2i], llrs[2i+1]
// are the A and B observations for input bit i; positive LLR favours a
// transmitted 0). The decoder assumes the encoder started in state 0; if
// terminated is true it also assumes zero tail bits drove it back to
// state 0 and forces the traceback to end there.
func ViterbiDecode(llrs []float64, terminated bool) []byte {
	n := len(llrs) / 2
	if n == 0 {
		return nil
	}

	// Precompute per-state transition outputs.
	type trans struct {
		next uint32
		outA byte
		outB byte
	}
	var table [numStates][2]trans
	for s := uint32(0); s < numStates; s++ {
		for b := uint32(0); b < 2; b++ {
			reg := (s << 1) | b
			table[s][b] = trans{
				next: reg & (numStates - 1),
				outA: parity(reg & genA),
				outB: parity(reg & genB),
			}
		}
	}

	negInf := math.Inf(-1)
	metric := make([]float64, numStates)
	next := make([]float64, numStates)
	for i := range metric {
		metric[i] = negInf
	}
	metric[0] = 0

	// decisions[t][state] is the input bit that won state `state` at
	// step t; prev[t][state] the predecessor state.
	decisions := make([][]byte, n)
	prevs := make([][]uint32, n)

	for t := 0; t < n; t++ {
		la, lb := llrs[2*t], llrs[2*t+1]
		dec := make([]byte, numStates)
		prv := make([]uint32, numStates)
		for i := range next {
			next[i] = negInf
		}
		for s := uint32(0); s < numStates; s++ {
			if metric[s] == negInf {
				continue
			}
			for b := uint32(0); b < 2; b++ {
				tr := table[s][b]
				// Soft metric: LLR is log P(0)/P(1); a transmitted 0
				// earns +llr/2, a 1 earns −llr/2 (constant offsets drop).
				m := metric[s]
				if tr.outA == 0 {
					m += la
				} else {
					m -= la
				}
				if tr.outB == 0 {
					m += lb
				} else {
					m -= lb
				}
				if m > next[tr.next] {
					next[tr.next] = m
					dec[tr.next] = byte(b)
					prv[tr.next] = s
				}
			}
		}
		metric, next = next, metric
		decisions[t] = dec
		prevs[t] = prv
	}

	// Traceback from the best final state (or state 0 if terminated).
	best := uint32(0)
	if !terminated {
		bm := negInf
		for s := uint32(0); s < numStates; s++ {
			if metric[s] > bm {
				bm = metric[s]
				best = s
			}
		}
	}
	out := make([]byte, n)
	state := best
	for t := n - 1; t >= 0; t-- {
		out[t] = decisions[t][state]
		state = prevs[t][state]
	}
	return out
}

// HardToLLR converts hard bits to saturated LLRs (for exercising the
// decoder with hard-decision inputs).
func HardToLLR(bits []byte) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		if b == 0 {
			out[i] = 4
		} else {
			out[i] = -4
		}
	}
	return out
}
