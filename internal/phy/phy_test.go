package phy

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"copa/internal/ofdm"
	"copa/internal/rng"
)

func TestScramblerInvolution(t *testing.T) {
	src := rng.New(1)
	bits := make([]byte, 256)
	for i := range bits {
		if src.Bool(0.5) {
			bits[i] = 1
		}
	}
	orig := append([]byte(nil), bits...)
	NewScrambler(0x2a).Apply(bits)
	changed := 0
	for i := range bits {
		if bits[i] != orig[i] {
			changed++
		}
	}
	if changed < 64 {
		t.Errorf("scrambler barely changed the data: %d/256", changed)
	}
	NewScrambler(0x2a).Apply(bits)
	for i := range bits {
		if bits[i] != orig[i] {
			t.Fatal("descrambling failed")
		}
	}
}

func TestScramblerPeriod(t *testing.T) {
	// A maximal-length 7-bit LFSR has period 127.
	s := NewScrambler(0x7f)
	var seq []byte
	for i := 0; i < 254; i++ {
		seq = append(seq, s.NextBit())
	}
	for i := 0; i < 127; i++ {
		if seq[i] != seq[i+127] {
			t.Fatal("sequence period is not 127")
		}
	}
	// Not a shorter period.
	same := true
	for i := 0; i < 63; i++ {
		if seq[i] != seq[i+63] {
			same = false
			break
		}
	}
	if same {
		t.Error("period shorter than 127")
	}
	if NewScrambler(0).state == 0 {
		t.Error("zero seed must be replaced")
	}
}

func TestConvEncodeKnown(t *testing.T) {
	// All-zero input → all-zero output.
	out := ConvEncode(make([]byte, 8))
	for _, b := range out {
		if b != 0 {
			t.Fatal("zero input should give zero output")
		}
	}
	// Single 1 then zeros: outputs trace the generator taps:
	// 133 octal = 1011011, 171 octal = 1111001 (MSB = current bit).
	impulse := make([]byte, 7)
	impulse[0] = 1
	out = ConvEncode(impulse)
	wantA := []byte{1, 0, 1, 1, 0, 1, 1}
	wantB := []byte{1, 1, 1, 1, 0, 0, 1}
	for i := 0; i < 7; i++ {
		if out[2*i] != wantA[i] || out[2*i+1] != wantB[i] {
			t.Fatalf("impulse response bit %d = (%d,%d), want (%d,%d)",
				i, out[2*i], out[2*i+1], wantA[i], wantB[i])
		}
	}
}

func TestPunctureRates(t *testing.T) {
	in := make([]byte, 120) // 60 input bits encoded
	cases := []struct {
		rate ofdm.CodeRate
		want int
	}{
		{ofdm.R12, 120}, {ofdm.R23, 90}, {ofdm.R34, 80}, {ofdm.R56, 72},
	}
	for _, c := range cases {
		out, err := Puncture(in, c.rate)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != c.want {
			t.Errorf("rate %v: %d bits, want %d", c.rate, len(out), c.want)
		}
		if CodedBits(60, c.rate) != c.want {
			t.Errorf("CodedBits(%v) = %d, want %d", c.rate, CodedBits(60, c.rate), c.want)
		}
	}
}

func TestDepunctureRoundTrip(t *testing.T) {
	for _, rate := range []ofdm.CodeRate{ofdm.R12, ofdm.R23, ofdm.R34, ofdm.R56} {
		bits := make([]byte, 30)
		for i := range bits {
			bits[i] = byte(i % 2)
		}
		coded := ConvEncode(bits)
		punct, err := Puncture(coded, rate)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Depuncture(HardToLLR(punct), rate, len(bits))
		if err != nil {
			t.Fatal(err)
		}
		if len(full) != len(coded) {
			t.Fatalf("rate %v: depunctured length %d, want %d", rate, len(full), len(coded))
		}
		// Every surviving position must agree in sign with the coded bit;
		// punctured positions are exactly zero.
		for i, l := range full {
			switch {
			case l == 0: // punctured
			case l > 0 && coded[i] != 0:
				t.Fatalf("rate %v: positive LLR for 1-bit at %d", rate, i)
			case l < 0 && coded[i] != 1:
				t.Fatalf("rate %v: negative LLR for 0-bit at %d", rate, i)
			}
		}
	}
}

func TestViterbiNoiselessAllRates(t *testing.T) {
	src := rng.New(3)
	for _, rate := range []ofdm.CodeRate{ofdm.R12, ofdm.R23, ofdm.R34, ofdm.R56} {
		bits := make([]byte, 200)
		for i := range bits {
			if src.Bool(0.5) {
				bits[i] = 1
			}
		}
		withTail := append(append([]byte(nil), bits...), make([]byte, constraintLen-1)...)
		coded := ConvEncode(withTail)
		punct, err := Puncture(coded, rate)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Depuncture(HardToLLR(punct), rate, len(withTail))
		if err != nil {
			t.Fatal(err)
		}
		got := ViterbiDecode(full, true)
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("rate %v: noiseless decode error at bit %d", rate, i)
			}
		}
	}
}

func TestViterbiCorrectsErrors(t *testing.T) {
	src := rng.New(4)
	bits := make([]byte, 100)
	for i := range bits {
		if src.Bool(0.5) {
			bits[i] = 1
		}
	}
	withTail := append(append([]byte(nil), bits...), make([]byte, constraintLen-1)...)
	coded := ConvEncode(withTail)
	// Flip 5 well-separated coded bits: far fewer than d_free/2 per
	// constraint span, so the decoder must fix all of them.
	for _, pos := range []int{10, 50, 90, 130, 170} {
		coded[pos] ^= 1
	}
	got := ViterbiDecode(HardToLLR(coded), true)
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("decode error at bit %d despite correctable channel", i)
		}
	}
}

func TestInterleaverBijective(t *testing.T) {
	for _, m := range []ofdm.Modulation{ofdm.BPSK, ofdm.QPSK, ofdm.QAM16, ofdm.QAM64} {
		perm := InterleaverPermutation(m)
		seen := make([]bool, len(perm))
		for _, p := range perm {
			if p < 0 || p >= len(perm) || seen[p] {
				t.Fatalf("%v: permutation not bijective", m)
			}
			seen[p] = true
		}
		// Round trip through soft path.
		bits := make([]byte, len(perm))
		for i := range bits {
			bits[i] = byte(i % 2)
		}
		inter := Interleave(m, bits)
		llr := make([]float64, len(inter))
		for i, b := range inter {
			if b == 0 {
				llr[i] = 1
			} else {
				llr[i] = -1
			}
		}
		back := DeinterleaveLLR(m, llr)
		for i := range bits {
			want := 1.0
			if bits[i] == 1 {
				want = -1
			}
			if back[i] != want {
				t.Fatalf("%v: deinterleave mismatch at %d", m, i)
			}
		}
	}
}

func TestInterleaverSpreadsAdjacentBits(t *testing.T) {
	// Adjacent coded bits must land on different subcarriers.
	for _, m := range []ofdm.Modulation{ofdm.QPSK, ofdm.QAM64} {
		perm := InterleaverPermutation(m)
		nbpsc := m.BitsPerSymbol()
		for k := 0; k+1 < len(perm); k++ {
			if perm[k]/nbpsc == perm[k+1]/nbpsc {
				t.Fatalf("%v: bits %d,%d share subcarrier %d", m, k, k+1, perm[k]/nbpsc)
			}
		}
	}
}

func TestQAMUnitEnergyAndGray(t *testing.T) {
	for _, m := range []ofdm.Modulation{ofdm.BPSK, ofdm.QPSK, ofdm.QAM16, ofdm.QAM64} {
		bits := m.BitsPerSymbol()
		n := 1 << bits
		var energy float64
		points := make(map[int]complex128)
		for v := 0; v < n; v++ {
			bs := make([]byte, bits)
			for i := 0; i < bits; i++ {
				bs[i] = byte((v >> (bits - 1 - i)) & 1)
			}
			sym := Map(m, bs)[0]
			points[v] = sym
			energy += real(sym)*real(sym) + imag(sym)*imag(sym)
		}
		energy /= float64(n)
		if math.Abs(energy-1) > 1e-9 {
			t.Errorf("%v: mean energy %g, want 1", m, energy)
		}
		// Gray property: nearest neighbours differ in exactly one bit.
		for a, pa := range points {
			for b, pb := range points {
				if a >= b {
					continue
				}
				d := cmplx.Abs(pa - pb)
				hamming := popcount(a ^ b)
				// Minimum distance pairs must be 1-bit apart.
				if d < minDist(m)*1.0001 && hamming != 1 {
					t.Errorf("%v: neighbours %x,%x differ in %d bits", m, a, b, hamming)
				}
			}
		}
	}
}

func minDist(m ofdm.Modulation) float64 {
	switch m {
	case ofdm.BPSK:
		return 2
	case ofdm.QPSK:
		return 2 / math.Sqrt2
	case ofdm.QAM16:
		return 2 / math.Sqrt(10)
	case ofdm.QAM64:
		return 2 / math.Sqrt(42)
	}
	return 0
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestDemapNoiselessSigns(t *testing.T) {
	src := rng.New(5)
	for _, m := range []ofdm.Modulation{ofdm.BPSK, ofdm.QPSK, ofdm.QAM16, ofdm.QAM64} {
		bits := make([]byte, m.BitsPerSymbol()*32)
		for i := range bits {
			if src.Bool(0.5) {
				bits[i] = 1
			}
		}
		syms := Map(m, bits)
		llrs := DemapLLR(m, syms, 0.001)
		for i, l := range llrs {
			if (l > 0) != (bits[i] == 0) || l == 0 {
				t.Fatalf("%v: LLR sign wrong at %d (llr=%g bit=%d)", m, i, l, bits[i])
			}
		}
	}
}

func TestQuickMapDemapRoundTrip(t *testing.T) {
	f := func(seed int64, modRaw uint8) bool {
		m := []ofdm.Modulation{ofdm.BPSK, ofdm.QPSK, ofdm.QAM16, ofdm.QAM64}[modRaw%4]
		src := rng.New(seed)
		bits := make([]byte, m.BitsPerSymbol()*16)
		for i := range bits {
			if src.Bool(0.5) {
				bits[i] = 1
			}
		}
		llrs := DemapLLR(m, Map(m, bits), 0.01)
		for i, l := range llrs {
			if (l > 0) != (bits[i] == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSimulateLinkHighSNRErrorFree(t *testing.T) {
	src := rng.New(6)
	for _, mcs := range []ofdm.MCS{ofdm.Table()[0], ofdm.Table()[4], ofdm.Table()[7]} {
		res, err := SimulateLink(src.Split(uint64(mcs.Index)), mcs, math.Pow(10, 35.0/10), 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.BitErrors != 0 {
			t.Errorf("%v at 35 dB: %d/%d bit errors", mcs, res.BitErrors, res.BitsSent)
		}
	}
}

func TestSimulateLinkLowSNRFails(t *testing.T) {
	src := rng.New(7)
	mcs := ofdm.Table()[7] // 64-QAM 5/6
	res, err := SimulateLink(src, mcs, math.Pow(10, 5.0/10), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors == 0 {
		t.Error("MCS7 at 5 dB should be undecodable")
	}
}

func TestSimulateLinkRawBERMatchesAnalytic(t *testing.T) {
	// The measured pre-decoder BER must track ofdm.UncodedBER within
	// statistical tolerance — this validates the analytic model the
	// whole testbed's throughput predictions rest on.
	src := rng.New(8)
	cases := []struct {
		mcs    ofdm.MCS
		snrDB  float64
		tolLog float64
	}{
		{ofdm.Table()[1], 4, 0.25},  // QPSK 1/2
		{ofdm.Table()[4], 12, 0.25}, // 16-QAM 3/4
		{ofdm.Table()[7], 18, 0.3},  // 64-QAM 5/6
	}
	for _, c := range cases {
		sinr := math.Pow(10, c.snrDB/10)
		res, err := SimulateLink(src.Split(uint64(c.mcs.Index)), c.mcs, sinr, 120)
		if err != nil {
			t.Fatal(err)
		}
		want := ofdm.UncodedBER(c.mcs.Modulation, sinr)
		got := res.RawBER()
		if got == 0 {
			t.Fatalf("%v @%g dB: no raw errors measured", c.mcs, c.snrDB)
		}
		if d := math.Abs(math.Log10(got) - math.Log10(want)); d > c.tolLog {
			t.Errorf("%v @%g dB: raw BER %.3g vs analytic %.3g (Δlog=%.2f)",
				c.mcs, c.snrDB, got, want, d)
		}
	}
}

func TestSimulateLinkCodingGain(t *testing.T) {
	// At a moderate SNR the decoder must deliver far fewer errors than
	// the raw channel.
	src := rng.New(9)
	mcs := ofdm.Table()[1] // QPSK 1/2
	res, err := SimulateLink(src, mcs, math.Pow(10, 6.0/10), 120)
	if err != nil {
		t.Fatal(err)
	}
	if res.RawBER() < 1e-3 {
		t.Skip("channel too clean for this check")
	}
	if res.BER() > res.RawBER()/10 {
		t.Errorf("coding gain too small: post %.3g vs raw %.3g", res.BER(), res.RawBER())
	}
}

func BenchmarkViterbi(b *testing.B) {
	src := rng.New(10)
	bits := make([]byte, 1000)
	for i := range bits {
		if src.Bool(0.5) {
			bits[i] = 1
		}
	}
	coded := ConvEncode(bits)
	llrs := HardToLLR(coded)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ViterbiDecode(llrs, false)
	}
}

func BenchmarkSimulateLinkMCS7(b *testing.B) {
	src := rng.New(11)
	mcs := ofdm.Table()[7]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateLink(src, mcs, 1000, 4); err != nil {
			b.Fatal(err)
		}
	}
}
