package phy

import (
	"errors"
	"fmt"
	"math"

	"copa/internal/channel"
	"copa/internal/linalg"
	"copa/internal/ofdm"
	"copa/internal/precoding"
	"copa/internal/rng"
)

// MIMOResult reports one spatial stream's end-to-end outcome over the
// symbol-level MIMO simulation.
type MIMOResult struct {
	LinkResult
	// PredictedRawBER is the analytic expectation: the per-subcarrier
	// post-MMSE SINRs mapped through the constellation's BER curve and
	// averaged — exactly what the throughput model assumes.
	PredictedRawBER float64
	// MeanSINRDB is the mean predicted post-MMSE SINR.
	MeanSINRDB float64
}

// SimulateMIMO pushes real modulated frames through the full spatial
// pipeline: per-stream scramble → encode → puncture → per-symbol
// interleave → QAM map → precoding (with per-subcarrier powers and TX
// noise) → true MIMO channel + concurrent interference + thermal noise →
// per-subcarrier MMSE equalization → LLR demap → deinterleave →
// depuncture → Viterbi → descramble.
//
// It returns one MIMOResult per own stream, with measured raw/coded BER
// alongside the analytic predictions derived from precoding.StreamSINRs.
// This is the ground-truth check for the whole evaluation pipeline: if
// measured and predicted raw BER agree, every Mb/s figure produced by the
// testbed stands on bit-level evidence.
//
// All own-stream subcarriers must carry power (no drops): the paper's
// A-MPDU preamble signals dropped subcarriers so the receiver skips them;
// here the caller simply evaluates undropped allocations (equal split).
func SimulateMIMO(src *rng.Source, own *channel.Link, ownTx *precoding.Transmission,
	cross *channel.Link, crossTx *precoding.Transmission,
	noisePerSCMW float64, mcs ofdm.MCS, symbols int) ([]MIMOResult, error) {

	nSC := len(own.Subcarriers)
	streams := ownTx.Precoder.Streams
	if symbols < 1 {
		return nil, errors.New("phy: need at least one OFDM symbol")
	}
	for k := 0; k < nSC; k++ {
		for s := 0; s < streams; s++ {
			if ownTx.PowerMW[k][s] <= 0 {
				return nil, fmt.Errorf("phy: SimulateMIMO requires undropped allocations (subcarrier %d stream %d)", k, s)
			}
		}
	}

	// Analytic predictions.
	sinrs := precoding.StreamSINRs(own, ownTx, cross, crossTx, noisePerSCMW)

	// Per-subcarrier MMSE machinery: filter rows G, bias μ, and the
	// per-stream effective noise (1−μ)/μ after bias normalization.
	type eq struct {
		g        *linalg.Matrix // Ns×Nr filter
		mu       []float64
		noiseVar []float64
	}
	eqs := make([]eq, nSC)
	for k := 0; k < nSC; k++ {
		h := own.Subcarriers[k]
		nr := h.Rows
		a := h.Mul(ownTx.Precoder.Scaled(k, ownTx.PowerMW[k]))
		r := a.Mul(a.H())
		if v := ownTx.TxNoiseVarMW[k]; v > 0 {
			r = r.Add(h.Mul(h.H()).Scale(complex(v, 0)))
		}
		if cross != nil && crossTx != nil {
			hc := cross.Subcarriers[k]
			ac := hc.Mul(crossTx.Precoder.Scaled(k, crossTx.PowerMW[k]))
			r = r.Add(ac.Mul(ac.H()))
			if v := crossTx.TxNoiseVarMW[k]; v > 0 {
				r = r.Add(hc.Mul(hc.H()).Scale(complex(v, 0)))
			}
		}
		for i := 0; i < nr; i++ {
			r.Set(i, i, r.At(i, i)+complex(noisePerSCMW, 0))
		}
		rinv, err := r.Inverse()
		if err != nil {
			return nil, fmt.Errorf("phy: covariance singular on subcarrier %d: %w", k, err)
		}
		g := a.H().Mul(rinv) // Ns×Nr
		ga := g.Mul(a)
		e := eq{g: g, mu: make([]float64, streams), noiseVar: make([]float64, streams)}
		for s := 0; s < streams; s++ {
			mu := real(ga.At(s, s))
			if mu <= 0 || mu >= 1 {
				mu = math.Min(math.Max(mu, 1e-9), 1-1e-9)
			}
			e.mu[s] = mu
			e.noiseVar[s] = (1 - mu) / mu
		}
		eqs[k] = e
	}

	// Bit pipeline per stream.
	nbpsc := mcs.Modulation.BitsPerSymbol()
	ncbps := nSC * nbpsc
	totalCoded := ncbps * symbols
	infoBits := int(float64(totalCoded)*mcs.CodeRate.Value()) - (constraintLen - 1)
	for CodedBits(infoBits+constraintLen-1, mcs.CodeRate) > totalCoded && infoBits > 0 {
		infoBits--
	}
	if infoBits <= 0 {
		return nil, fmt.Errorf("phy: frame too small for %v", mcs)
	}

	type streamState struct {
		info      []byte
		punctured []byte
		padded    []byte
		llrs      []float64
		rawErrs   int
		inter     [][]byte // per symbol interleaved bits
	}
	sts := make([]*streamState, streams)
	for s := 0; s < streams; s++ {
		st := &streamState{info: make([]byte, infoBits)}
		bsrc := src.Split(uint64(100 + s))
		for i := range st.info {
			if bsrc.Bool(0.5) {
				st.info[i] = 1
			}
		}
		scrambled := NewScrambler(0x5d).Apply(append([]byte(nil), st.info...))
		withTail := append(scrambled, make([]byte, constraintLen-1)...)
		coded := ConvEncode(withTail)
		punct, err := Puncture(coded, mcs.CodeRate)
		if err != nil {
			return nil, err
		}
		st.punctured = punct
		st.padded = append([]byte(nil), punct...)
		for i := 0; len(st.padded) < totalCoded; i++ {
			st.padded = append(st.padded, byte(i&1))
		}
		st.inter = make([][]byte, symbols)
		for t := 0; t < symbols; t++ {
			st.inter[t] = Interleave(mcs.Modulation, st.padded[t*ncbps:(t+1)*ncbps])
		}
		sts[s] = st
	}

	noise := src.Split(7)
	intSrc := src.Split(8)
	evm := src.Split(9)

	// Symbol-by-symbol transmission.
	for t := 0; t < symbols; t++ {
		// Map this symbol's bits per stream and subcarrier.
		xs := make([][]complex128, streams) // xs[s][k]
		for s, st := range sts {
			xs[s] = Map(mcs.Modulation, st.inter[t])
		}
		llrSym := make([][]float64, streams) // per-subcarrier LLRs, concatenated
		for s := range llrSym {
			llrSym[s] = make([]float64, 0, ncbps)
		}
		for k := 0; k < nSC; k++ {
			h := own.Subcarriers[k]
			nr := h.Rows
			// Own transmit vector.
			w := ownTx.Precoder.Scaled(k, ownTx.PowerMW[k])
			xvec := make([]complex128, streams)
			for s := 0; s < streams; s++ {
				xvec[s] = xs[s][k]
			}
			sig := w.MulVec(xvec)
			if v := ownTx.TxNoiseVarMW[k]; v > 0 {
				for a := range sig {
					sig[a] += evm.CN(v)
				}
			}
			y := h.MulVec(sig)
			// Interference.
			if cross != nil && crossTx != nil {
				wc := crossTx.Precoder.Scaled(k, crossTx.PowerMW[k])
				xc := make([]complex128, crossTx.Precoder.Streams)
				for s := range xc {
					// Interfering payload: random QPSK-like symbols.
					xc[s] = complex(sign(intSrc.Bool(0.5))/math.Sqrt2, sign(intSrc.Bool(0.5))/math.Sqrt2)
				}
				si := wc.MulVec(xc)
				if v := crossTx.TxNoiseVarMW[k]; v > 0 {
					for a := range si {
						si[a] += evm.CN(v)
					}
				}
				yi := cross.Subcarriers[k].MulVec(si)
				for a := 0; a < nr; a++ {
					y[a] += yi[a]
				}
			}
			for a := 0; a < nr; a++ {
				y[a] += noise.CN(noisePerSCMW)
			}
			// MMSE equalize and demap each stream's cell.
			est := eqs[k].g.MulVec(y)
			for s := 0; s < streams; s++ {
				xhat := est[s] / complex(eqs[k].mu[s], 0)
				cellLLR := DemapLLR(mcs.Modulation, []complex128{xhat}, eqs[k].noiseVar[s])
				llrSym[s] = append(llrSym[s], cellLLR...)
				// Raw errors against the interleaved bits.
				for b := 0; b < nbpsc; b++ {
					hard := byte(0)
					if cellLLR[b] < 0 {
						hard = 1
					}
					if hard != sts[s].inter[t][k*nbpsc+b] {
						sts[s].rawErrs++
					}
				}
			}
		}
		for s, st := range sts {
			st.llrs = append(st.llrs, DeinterleaveLLR(mcs.Modulation, llrSym[s])...)
		}
	}

	// Decode per stream and assemble results.
	out := make([]MIMOResult, streams)
	for s, st := range sts {
		llrs := st.llrs[:len(st.punctured)]
		full, err := Depuncture(llrs, mcs.CodeRate, infoBits+constraintLen-1)
		if err != nil {
			return nil, err
		}
		decoded := ViterbiDecode(full, true)
		descrambled := NewScrambler(0x5d).Apply(decoded[:infoBits])
		res := MIMOResult{LinkResult: LinkResult{
			BitsSent:     infoBits,
			CodedBits:    len(st.punctured),
			RawBitErrors: st.rawErrs,
		}}
		for i := range st.info {
			if descrambled[i] != st.info[i] {
				res.BitErrors++
			}
		}
		// Analytic prediction from the SINR model.
		var berSum, sinrSum float64
		for k := 0; k < nSC; k++ {
			berSum += ofdm.UncodedBER(mcs.Modulation, sinrs[k][s])
			sinrSum += sinrs[k][s]
		}
		res.PredictedRawBER = berSum / float64(nSC)
		res.MeanSINRDB = channel.LinearToDB(sinrSum / float64(nSC))
		out[s] = res
	}
	return out, nil
}

func sign(b bool) float64 {
	if b {
		return 1
	}
	return -1
}

// rawErrorsTotal sums raw errors across stream results.
func rawErrorsTotal(rs []MIMOResult) (errs, bits int) {
	for _, r := range rs {
		errs += r.RawBitErrors
		bits += r.CodedBits
	}
	return errs, bits
}
