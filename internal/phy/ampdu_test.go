package phy

import (
	"bytes"
	"testing"
	"testing/quick"

	"copa/internal/rng"
)

func randMPDUs(src *rng.Source, n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		m := make([]byte, size)
		for j := range m {
			m[j] = byte(src.Intn(256))
		}
		out[i] = m
	}
	return out
}

func TestAMPDURoundTrip(t *testing.T) {
	src := rng.New(1)
	mpdus := randMPDUs(src, 5, 1500)
	agg, err := Aggregate(mpdus)
	if err != nil {
		t.Fatal(err)
	}
	got := Deaggregate(agg)
	if len(got) != 5 {
		t.Fatalf("recovered %d MPDUs", len(got))
	}
	for i, r := range got {
		if !r.OK || !bytes.Equal(r.Payload, mpdus[i]) {
			t.Fatalf("MPDU %d mismatch (ok=%v)", i, r.OK)
		}
	}
}

func TestAMPDUCorruptedBodyLosesOnlyItself(t *testing.T) {
	src := rng.New(2)
	mpdus := randMPDUs(src, 4, 600)
	agg, err := Aggregate(mpdus)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second MPDU's body.
	per := len(agg) / 4
	agg[per+delimiterBytes+10] ^= 0xff
	got := Deaggregate(agg)
	if len(got) != 4 {
		t.Fatalf("recovered %d slots", len(got))
	}
	okCount := 0
	for _, r := range got {
		if r.OK {
			okCount++
		}
	}
	if okCount != 3 {
		t.Errorf("%d MPDUs survived, want 3", okCount)
	}
}

func TestAMPDUCorruptedDelimiterResyncs(t *testing.T) {
	src := rng.New(3)
	mpdus := randMPDUs(src, 3, 256)
	agg, err := Aggregate(mpdus)
	if err != nil {
		t.Fatal(err)
	}
	// Destroy the first delimiter entirely.
	agg[0] ^= 0xff
	agg[3] ^= 0xff
	got := Deaggregate(agg)
	recovered := 0
	for _, r := range got {
		if r.OK {
			recovered++
		}
	}
	// The later MPDUs must be recoverable via resync.
	if recovered < 2 {
		t.Errorf("only %d MPDUs recovered after delimiter corruption", recovered)
	}
}

func TestAMPDUValidation(t *testing.T) {
	if _, err := Aggregate([][]byte{{}}); err == nil {
		t.Error("empty MPDU accepted")
	}
	big := make([]byte, maxMPDUBytes)
	if _, err := Aggregate([][]byte{big}); err == nil {
		t.Error("oversized MPDU accepted")
	}
	if got := Deaggregate(nil); len(got) != 0 {
		t.Error("nil stream produced MPDUs")
	}
	if got := Deaggregate([]byte{1, 2, 3}); len(got) != 0 {
		t.Error("short garbage produced MPDUs")
	}
}

func TestAggregateOverhead(t *testing.T) {
	// 1500-byte MPDU: 4 delimiter + 4 FCS + padding to multiple of 4.
	oh := AggregateOverhead(1500)
	if oh < 8 || oh > 11 {
		t.Errorf("overhead %d bytes", oh)
	}
	src := rng.New(4)
	mpdus := randMPDUs(src, 1, 1500)
	agg, _ := Aggregate(mpdus)
	if len(agg) != 1500+AggregateOverhead(1500) {
		t.Errorf("actual framing %d vs computed %d", len(agg)-1500, AggregateOverhead(1500))
	}
}

func TestQuickAMPDUNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		for _, r := range Deaggregate(data) {
			if r.OK && r.Payload == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
