package phy

import (
	"math"
	"testing"

	"copa/internal/channel"
	"copa/internal/ofdm"
	"copa/internal/precoding"
	"copa/internal/rng"
)

// mimoRig builds a 4x2 pair with nulling precoders and equal-split powers.
func mimoRig(t testing.TB, seed int64, gainDB float64, null bool) (own, cross *channel.Link, tx1, tx2 *precoding.Transmission) {
	t.Helper()
	src := rng.New(seed)
	imp := channel.PerfectHardware()
	h11 := channel.NewLink(src.Split(1), 2, 4, channel.DBToLinear(gainDB))
	h21 := channel.NewLink(src.Split(2), 2, 4, channel.DBToLinear(gainDB-6))
	h22 := channel.NewLink(src.Split(3), 2, 4, channel.DBToLinear(gainDB))
	h12 := channel.NewLink(src.Split(4), 2, 4, channel.DBToLinear(gainDB-6))

	var p1, p2 *precoding.Precoder
	var err error
	if null {
		if p1, err = precoding.Nulling(h11, h12, 2); err != nil {
			t.Fatal(err)
		}
		if p2, err = precoding.Nulling(h22, h21, 2); err != nil {
			t.Fatal(err)
		}
	} else {
		if p1, err = precoding.Beamforming(h11, 2); err != nil {
			t.Fatal(err)
		}
		if p2, err = precoding.Beamforming(h22, 2); err != nil {
			t.Fatal(err)
		}
	}
	budget := channel.BudgetForAntennasMW(4)
	powers := precoding.EqualSplit(ofdm.NumSubcarriers, 2, budget)
	tx1 = precoding.NewTransmission(p1, powers, imp)
	tx2 = precoding.NewTransmission(p2, powers, imp)
	return h11, h21, tx1, tx2
}

func TestSimulateMIMOSoloHighSNRErrorFree(t *testing.T) {
	own, _, tx1, _ := mimoRig(t, 1, -55, false)
	res, err := SimulateMIMO(rng.New(2), own, tx1, nil, nil, channel.NoisePerSubcarrierMW(), ofdm.Table()[4], 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d streams", len(res))
	}
	for s, r := range res {
		if r.BitErrors != 0 {
			t.Errorf("stream %d: %d/%d errors at a strong link", s, r.BitErrors, r.BitsSent)
		}
		if r.MeanSINRDB < 20 {
			t.Errorf("stream %d mean SINR %.1f dB unexpectedly low", s, r.MeanSINRDB)
		}
	}
}

func TestSimulateMIMOMatchesAnalyticBER(t *testing.T) {
	// The headline validation: measured pre-decoder BER under real MMSE
	// equalization with concurrent interference must track the analytic
	// prediction from precoding.StreamSINRs + ofdm.UncodedBER.
	// Weak link so raw errors are plentiful.
	own, cross, tx1, tx2 := mimoRig(t, 3, -78, true)
	res, err := SimulateMIMO(rng.New(4), own, tx1, cross, tx2, channel.NoisePerSubcarrierMW(), ofdm.Table()[3], 60)
	if err != nil {
		t.Fatal(err)
	}
	for s, r := range res {
		if r.RawBitErrors < 30 {
			t.Logf("stream %d: only %d raw errors; comparison weak", s, r.RawBitErrors)
			continue
		}
		got, want := r.RawBER(), r.PredictedRawBER
		if d := math.Abs(math.Log10(got) - math.Log10(want)); d > 0.35 {
			t.Errorf("stream %d: measured raw BER %.3g vs predicted %.3g (Δlog10=%.2f)",
				s, got, want, d)
		}
	}
}

func TestSimulateMIMOInterferenceHurts(t *testing.T) {
	own, cross, tx1, tx2 := mimoRig(t, 5, -72, false) // beamforming: full cross-interference
	noise := channel.NoisePerSubcarrierMW()
	alone, err := SimulateMIMO(rng.New(6), own, tx1, nil, nil, noise, ofdm.Table()[4], 30)
	if err != nil {
		t.Fatal(err)
	}
	crowded, err := SimulateMIMO(rng.New(6), own, tx1, cross, tx2, noise, ofdm.Table()[4], 30)
	if err != nil {
		t.Fatal(err)
	}
	aErr, aBits := rawErrorsTotal(alone)
	cErr, cBits := rawErrorsTotal(crowded)
	aBER := float64(aErr) / float64(aBits)
	cBER := float64(cErr) / float64(cBits)
	if cBER <= aBER {
		t.Errorf("interference did not raise raw BER: alone %.3g, crowded %.3g", aBER, cBER)
	}
}

func TestSimulateMIMONullingProtects(t *testing.T) {
	// With the interferer nulling (perfect CSI), the victim's BER under
	// concurrency should be close to its solo BER.
	own, cross, tx1, tx2 := mimoRig(t, 7, -72, true)
	noise := channel.NoisePerSubcarrierMW()
	alone, err := SimulateMIMO(rng.New(8), own, tx1, nil, nil, noise, ofdm.Table()[3], 30)
	if err != nil {
		t.Fatal(err)
	}
	crowded, err := SimulateMIMO(rng.New(8), own, tx1, cross, tx2, noise, ofdm.Table()[3], 30)
	if err != nil {
		t.Fatal(err)
	}
	aErr, aBits := rawErrorsTotal(alone)
	cErr, _ := rawErrorsTotal(crowded)
	aBER := float64(aErr+1) / float64(aBits)
	cBER := float64(cErr+1) / float64(aBits)
	if cBER > aBER*5 {
		t.Errorf("perfectly nulled interference still hurt: alone %.3g, crowded %.3g", aBER, cBER)
	}
}

func TestSimulateMIMORejectsDrops(t *testing.T) {
	own, _, tx1, _ := mimoRig(t, 9, -60, false)
	tx1.PowerMW[3][1] = 0
	if _, err := SimulateMIMO(rng.New(10), own, tx1, nil, nil, channel.NoisePerSubcarrierMW(), ofdm.Table()[0], 2); err == nil {
		t.Error("dropped subcarrier should be rejected")
	}
}

func BenchmarkSimulateMIMO(b *testing.B) {
	own, cross, tx1, tx2 := mimoRig(b, 11, -70, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateMIMO(rng.New(int64(i)), own, tx1, cross, tx2, channel.NoisePerSubcarrierMW(), ofdm.Table()[3], 4); err != nil {
			b.Fatal(err)
		}
	}
}
