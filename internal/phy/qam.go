package phy

import (
	"math"

	"copa/internal/ofdm"
)

// grayPAM returns the unit-spacing Gray-coded PAM levels for b bits per
// dimension, index = Gray code of the level's bit pattern.
// For b=1: {−1, +1}; b=2: {−3, −1, +1, +3}; b=3: {−7 … +7}.
func grayPAM(b int) []float64 {
	n := 1 << b
	levels := make([]float64, n)
	for code := 0; code < n; code++ {
		// level index i (0..n-1 in amplitude order) has Gray code
		// g = i ^ (i>>1). Invert: find i for each code.
		i := 0
		for j := 0; j < n; j++ {
			if j^(j>>1) == code {
				i = j
				break
			}
		}
		levels[code] = float64(2*i - (n - 1))
	}
	return levels
}

// qamParams returns per-dimension bit count and the power normalization
// for a constellation (unit average symbol energy).
func qamParams(m ofdm.Modulation) (bitsI, bitsQ int, norm float64) {
	switch m {
	case ofdm.BPSK:
		return 1, 0, 1
	case ofdm.QPSK:
		return 1, 1, math.Sqrt2
	case ofdm.QAM16:
		return 2, 2, math.Sqrt(10)
	case ofdm.QAM64:
		return 3, 3, math.Sqrt(42)
	}
	panic("phy: unknown modulation")
}

// Map modulates coded bits onto constellation symbols (unit average
// energy). Bits are consumed MSB-first per dimension: first the I bits,
// then the Q bits. len(bits) must be a multiple of BitsPerSymbol.
func Map(m ofdm.Modulation, bits []byte) []complex128 {
	bi, bq, norm := qamParams(m)
	per := bi + bq
	if len(bits)%per != 0 {
		panic("phy: bit count not a multiple of bits per symbol")
	}
	pamI := grayPAM(bi)
	var pamQ []float64
	if bq > 0 {
		pamQ = grayPAM(bq)
	}
	out := make([]complex128, len(bits)/per)
	for s := range out {
		chunk := bits[s*per : (s+1)*per]
		ci := 0
		for _, b := range chunk[:bi] {
			ci = ci<<1 | int(b&1)
		}
		re := pamI[ci]
		im := 0.0
		if bq > 0 {
			cq := 0
			for _, b := range chunk[bi:] {
				cq = cq<<1 | int(b&1)
			}
			im = pamQ[cq]
		}
		out[s] = complex(re/norm, im/norm)
	}
	return out
}

// DemapLLR computes per-bit max-log LLRs (log P(bit=0) − log P(bit=1))
// for received symbols y = x + n with noise variance noiseVar per complex
// dimension pair (i.e. total complex noise power). Output order matches
// Map's bit order.
func DemapLLR(m ofdm.Modulation, symbols []complex128, noiseVar float64) []float64 {
	bi, bq, norm := qamParams(m)
	per := bi + bq
	if noiseVar <= 0 {
		noiseVar = 1e-12
	}
	pamI := grayPAM(bi)
	var pamQ []float64
	if bq > 0 {
		pamQ = grayPAM(bq)
	}
	out := make([]float64, 0, len(symbols)*per)
	// Per-dimension noise variance is half the complex noise power.
	sigma2 := noiseVar / 2
	if bq == 0 {
		sigma2 = noiseVar // BPSK: all information in I, noise still complex
	}
	dimLLR := func(y float64, pam []float64, bits int) []float64 {
		llrs := make([]float64, bits)
		for bit := 0; bit < bits; bit++ {
			best0, best1 := math.Inf(1), math.Inf(1)
			for code, lvl := range pam {
				d := y - lvl/norm
				dist := d * d
				if (code>>(bits-1-bit))&1 == 0 {
					if dist < best0 {
						best0 = dist
					}
				} else if dist < best1 {
					best1 = dist
				}
			}
			llrs[bit] = (best1 - best0) / (2 * sigma2)
		}
		return llrs
	}
	for _, y := range symbols {
		out = append(out, dimLLR(real(y), pamI, bi)...)
		if bq > 0 {
			out = append(out, dimLLR(imag(y), pamQ, bq)...)
		}
	}
	return out
}
