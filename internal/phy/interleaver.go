package phy

import "copa/internal/ofdm"

// InterleaverPermutation returns the 802.11 per-OFDM-symbol block
// interleaver permutation for the given modulation over the HT 52-data-
// subcarrier layout: perm[k] is the output position of input coded bit k.
// The two-step permutation spreads adjacent coded bits across
// non-adjacent subcarriers and alternating significant bit positions.
func InterleaverPermutation(m ofdm.Modulation) []int {
	nbpsc := m.BitsPerSymbol()
	ncbps := ofdm.NumSubcarriers * nbpsc
	// HT 20 MHz parameters (802.11n §20.3.11.8.1): 13 columns, 4·Nbpsc
	// rows, so the block always divides evenly over 52 data subcarriers.
	const ncol = 13
	nrow := 4 * nbpsc
	s := nbpsc / 2
	if s < 1 {
		s = 1
	}
	perm := make([]int, ncbps)
	for k := 0; k < ncbps; k++ {
		// First permutation: write row-wise, read column-wise.
		i := nrow*(k%ncol) + k/ncol
		// Second permutation: rotate bit positions within a subcarrier.
		j := s*(i/s) + (i+ncbps-(ncol*i)/ncbps)%s
		perm[k] = j
	}
	return perm
}

// Interleave permutes one OFDM symbol's worth of coded bits.
func Interleave(m ofdm.Modulation, bits []byte) []byte {
	perm := InterleaverPermutation(m)
	if len(bits) != len(perm) {
		panic("phy: interleaver block size mismatch")
	}
	out := make([]byte, len(bits))
	for k, b := range bits {
		out[perm[k]] = b
	}
	return out
}

// DeinterleaveLLR inverts the interleaver on a block of soft values.
func DeinterleaveLLR(m ofdm.Modulation, llrs []float64) []float64 {
	perm := InterleaverPermutation(m)
	if len(llrs) != len(perm) {
		panic("phy: deinterleaver block size mismatch")
	}
	out := make([]float64, len(llrs))
	for k := range out {
		out[k] = llrs[perm[k]]
	}
	return out
}
