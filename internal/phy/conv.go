package phy

import (
	"fmt"

	"copa/internal/ofdm"
)

// The 802.11 convolutional code: constraint length 7, generators 133 and
// 171 (octal).
const (
	constraintLen = 7
	numStates     = 1 << (constraintLen - 1) // 64
	// The standard generators are 133/171 octal with the *current* input
	// bit as the polynomial's most significant tap. This implementation
	// keeps the current bit in the register's LSB, so the tap masks are
	// the 7-bit reversals: rev(133₈=1011011) = 1101101₂ = 155₈ and
	// rev(171₈=1111001) = 1001111₂ = 117₈.
	genA = 0o155
	genB = 0o117
)

// parity returns the parity of x.
func parity(x uint32) byte {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}

// ConvEncode encodes bits with the rate-1/2 mother code, returning the
// (A, B) output pair per input bit, interleaved as A0 B0 A1 B1 …. The
// encoder starts and ends in state 0; callers should append
// constraintLen−1 zero tail bits if they want termination.
func ConvEncode(bits []byte) []byte {
	out := make([]byte, 0, len(bits)*2)
	var state uint32 // (constraintLen-1)-bit register
	for _, b := range bits {
		reg := (state << 1) | uint32(b&1)
		out = append(out, parity(reg&genA), parity(reg&genB))
		state = reg & (numStates - 1)
	}
	return out
}

// puncturePattern returns the A and B keep-masks for a code rate, applied
// cyclically per input bit (802.11 §17.3.5.6).
func puncturePattern(rate ofdm.CodeRate) (a, b []bool, err error) {
	switch rate {
	case ofdm.R12:
		return []bool{true}, []bool{true}, nil
	case ofdm.R23:
		return []bool{true, true}, []bool{true, false}, nil
	case ofdm.R34:
		return []bool{true, true, false}, []bool{true, false, true}, nil
	case ofdm.R56:
		return []bool{true, true, false, true, false}, []bool{true, false, true, false, true}, nil
	}
	return nil, nil, fmt.Errorf("phy: unknown code rate %v", rate)
}

// Puncture drops coded bits per the rate's pattern. Input is the
// interleaved A0 B0 A1 B1 … stream from ConvEncode.
func Puncture(coded []byte, rate ofdm.CodeRate) ([]byte, error) {
	a, b, err := puncturePattern(rate)
	if err != nil {
		return nil, err
	}
	period := len(a)
	out := make([]byte, 0, len(coded))
	for i := 0; i*2+1 < len(coded); i++ {
		p := i % period
		if a[p] {
			out = append(out, coded[i*2])
		}
		if b[p] {
			out = append(out, coded[i*2+1])
		}
	}
	return out, nil
}

// Depuncture re-inserts erased positions into a punctured LLR stream as
// zero LLRs (no information), returning the full-rate A0 B0 A1 B1 …
// sequence of length 2·inputBits.
func Depuncture(llrs []float64, rate ofdm.CodeRate, inputBits int) ([]float64, error) {
	a, b, err := puncturePattern(rate)
	if err != nil {
		return nil, err
	}
	period := len(a)
	out := make([]float64, 0, inputBits*2)
	idx := 0
	take := func(keep bool) float64 {
		if !keep || idx >= len(llrs) {
			return 0
		}
		v := llrs[idx]
		idx++
		return v
	}
	for i := 0; i < inputBits; i++ {
		p := i % period
		out = append(out, take(a[p]), take(b[p]))
	}
	return out, nil
}

// CodedBits returns how many bits survive puncturing for inputBits input
// bits at the given rate.
func CodedBits(inputBits int, rate ofdm.CodeRate) int {
	a, b, err := puncturePattern(rate)
	if err != nil {
		return 0
	}
	period := len(a)
	n := 0
	for i := 0; i < inputBits; i++ {
		p := i % period
		if a[p] {
			n++
		}
		if b[p] {
			n++
		}
	}
	return n
}
