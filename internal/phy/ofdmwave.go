package phy

import (
	"errors"
	"math"
	"math/cmplx"

	"copa/internal/ofdm"
)

// Waveform-level OFDM: the 64-point IFFT/FFT pair, cyclic prefix handling,
// and time-domain channel convolution. This closes the lowest loop in the
// simulator: the frequency-domain channel model (per-subcarrier matrices
// from the DFT of the taps) must agree with literally convolving the
// transmitted waveform with those taps — see TestWaveformMatchesFrequencyModel.

// fftRadix2 computes an in-place radix-2 Cooley–Tukey FFT of x
// (len must be a power of two); inverse=true gives the unscaled IDFT.
func fftRadix2(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return errors.New("phy: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// FFT returns the DFT of x (len must be a power of two).
func FFT(x []complex128) ([]complex128, error) {
	out := append([]complex128(nil), x...)
	if err := fftRadix2(out, false); err != nil {
		return nil, err
	}
	return out, nil
}

// IFFT returns the inverse DFT of x, scaled by 1/N.
func IFFT(x []complex128) ([]complex128, error) {
	out := append([]complex128(nil), x...)
	if err := fftRadix2(out, true); err != nil {
		return nil, err
	}
	scale := complex(1/float64(len(out)), 0)
	for i := range out {
		out[i] *= scale
	}
	return out, nil
}

// cpSamples is the 800 ns cyclic prefix at the 20 MHz sample rate.
const cpSamples = 16

// OFDMModulate places one symbol's data-subcarrier values onto the
// 64-bin grid (using the HT bin layout of package channel), IFFTs, and
// prepends the cyclic prefix. data must have ofdm.NumSubcarriers entries.
func OFDMModulate(data []complex128) ([]complex128, error) {
	if len(data) != ofdm.NumSubcarriers {
		return nil, errors.New("phy: OFDMModulate wants one value per data subcarrier")
	}
	grid := make([]complex128, ofdm.FFTSize)
	for k, v := range data {
		grid[binIndex(k)] = v
	}
	td, err := IFFT(grid)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, 0, ofdm.FFTSize+cpSamples)
	out = append(out, td[ofdm.FFTSize-cpSamples:]...)
	out = append(out, td...)
	return out, nil
}

// OFDMDemodulate strips the cyclic prefix, FFTs, and extracts the data
// subcarriers.
func OFDMDemodulate(samples []complex128) ([]complex128, error) {
	if len(samples) != ofdm.FFTSize+cpSamples {
		return nil, errors.New("phy: OFDMDemodulate wants one CP-prefixed symbol")
	}
	fd, err := FFT(samples[cpSamples:])
	if err != nil {
		return nil, err
	}
	out := make([]complex128, ofdm.NumSubcarriers)
	for k := range out {
		out[k] = fd[binIndex(k)]
	}
	return out, nil
}

// binIndex maps data subcarrier k to its FFT bin (DC excluded), matching
// the channel model's layout: bins −26…−1 and 1…26 modulo 64.
func binIndex(k int) int {
	bin := k - ofdm.NumSubcarriers/2
	if bin >= 0 {
		bin++
	}
	if bin < 0 {
		bin += ofdm.FFTSize
	}
	return bin
}

// ConvolveCircularSafe convolves samples with taps (linear convolution,
// output truncated to len(samples)); with a cyclic prefix at least as
// long as the channel, the post-CP portion equals circular convolution —
// the property OFDM relies on.
func ConvolveCircularSafe(samples, taps []complex128) []complex128 {
	out := make([]complex128, len(samples))
	for n := range out {
		var acc complex128
		for l, h := range taps {
			if n-l >= 0 {
				acc += h * samples[n-l]
			}
		}
		out[n] = acc
	}
	return out
}
