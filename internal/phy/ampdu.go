package phy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// A-MPDU aggregation (802.11n §9.7): many MPDUs ride in one PHY
// transmission, each behind a delimiter with its own CRC, so one corrupted
// MPDU doesn't kill its siblings — the property that makes COPA's 4 ms
// TXOPs efficient and underlies the per-MPDU frame-error model in package
// ofdm. The delimiter here carries a length, a CRC over the length field,
// and the standard signature byte; each MPDU body is protected by an FCS.

const (
	// delimiterBytes is the A-MPDU delimiter size.
	delimiterBytes = 4
	// delimiterSignature is the 802.11n MPDU delimiter signature ('N').
	delimiterSignature = 0x4e
	// fcsBytes is the per-MPDU frame check sequence.
	fcsBytes = 4
	// maxMPDUBytes bounds a single MPDU body.
	maxMPDUBytes = 65535
)

// ErrBadAMPDU is returned for structurally invalid aggregates.
var ErrBadAMPDU = errors.New("phy: bad A-MPDU")

// delimiterCRC is the 8-bit CRC the standard puts over the delimiter's
// length field; we use the low byte of CRC-32 for simplicity (same
// detection role, simulator fidelity does not hinge on the polynomial).
func delimiterCRC(length uint16) byte {
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], length)
	return byte(crc32.ChecksumIEEE(buf[:]))
}

// Aggregate packs MPDU bodies into one A-MPDU byte stream: for each MPDU
// a delimiter (length, CRC, signature) followed by the body and its FCS,
// padded to 4-byte alignment as the standard requires.
func Aggregate(mpdus [][]byte) ([]byte, error) {
	var out []byte
	for i, m := range mpdus {
		if len(m) == 0 || len(m) > maxMPDUBytes-fcsBytes {
			return nil, fmt.Errorf("%w: MPDU %d has %d bytes", ErrBadAMPDU, i, len(m))
		}
		total := uint16(len(m) + fcsBytes)
		delim := make([]byte, delimiterBytes)
		binary.LittleEndian.PutUint16(delim[0:2], total)
		delim[2] = delimiterCRC(total)
		delim[3] = delimiterSignature
		out = append(out, delim...)
		out = append(out, m...)
		var fcs [fcsBytes]byte
		binary.LittleEndian.PutUint32(fcs[:], crc32.ChecksumIEEE(m))
		out = append(out, fcs[:]...)
		for len(out)%4 != 0 {
			out = append(out, 0)
		}
	}
	return out, nil
}

// DeaggregateResult reports one recovered MPDU slot.
type DeaggregateResult struct {
	// Payload is the MPDU body; nil if the FCS failed.
	Payload []byte
	// OK is true when both delimiter and FCS validated.
	OK bool
}

// Deaggregate walks an (possibly corrupted) A-MPDU stream and recovers
// what it can: on a bad delimiter it slides forward one 4-byte step
// looking for the next valid signature — the standard's resynchronization
// behaviour — so one corrupted MPDU costs only itself.
func Deaggregate(data []byte) []DeaggregateResult {
	var out []DeaggregateResult
	pos := 0
	for pos+delimiterBytes <= len(data) {
		length := binary.LittleEndian.Uint16(data[pos : pos+2])
		crcOK := data[pos+2] == delimiterCRC(length)
		sigOK := data[pos+3] == delimiterSignature
		if !crcOK || !sigOK || length < fcsBytes || pos+delimiterBytes+int(length) > len(data) {
			// Resync scan: advance one alignment step.
			pos += 4
			continue
		}
		body := data[pos+delimiterBytes : pos+delimiterBytes+int(length)-fcsBytes]
		fcs := binary.LittleEndian.Uint32(data[pos+delimiterBytes+int(length)-fcsBytes : pos+delimiterBytes+int(length)])
		if crc32.ChecksumIEEE(body) == fcs {
			cp := append([]byte(nil), body...)
			out = append(out, DeaggregateResult{Payload: cp, OK: true})
		} else {
			out = append(out, DeaggregateResult{OK: false})
		}
		pos += delimiterBytes + int(length)
		for pos%4 != 0 {
			pos++
		}
	}
	return out
}

// AggregateOverhead returns the framing bytes added per MPDU of the given
// size (delimiter + FCS + padding), used by throughput accounting.
func AggregateOverhead(mpduBytes int) int {
	raw := delimiterBytes + mpduBytes + fcsBytes
	pad := (4 - raw%4) % 4
	return delimiterBytes + fcsBytes + pad
}
