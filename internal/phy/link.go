package phy

import (
	"fmt"
	"math"

	"copa/internal/ofdm"
	"copa/internal/rng"
)

// LinkResult summarizes one end-to-end transmission experiment.
type LinkResult struct {
	// BitsSent is the number of information bits carried.
	BitsSent int
	// RawBitErrors counts pre-decoder errors on coded bits.
	RawBitErrors int
	// BitErrors counts post-decoder information-bit errors.
	BitErrors int
	// CodedBits is the number of transmitted coded bits.
	CodedBits int
}

// RawBER is the pre-decoder bit error rate.
func (r LinkResult) RawBER() float64 {
	if r.CodedBits == 0 {
		return 0
	}
	return float64(r.RawBitErrors) / float64(r.CodedBits)
}

// BER is the post-decoder information bit error rate.
func (r LinkResult) BER() float64 {
	if r.BitsSent == 0 {
		return 0
	}
	return float64(r.BitErrors) / float64(r.BitsSent)
}

// SimulateLink runs the full 802.11 baseband chain over a frequency-flat
// AWGN subcarrier at the given per-symbol linear SINR: scramble → encode →
// puncture → interleave (per OFDM symbol) → QAM map → AWGN → soft demap →
// deinterleave → depuncture → Viterbi → descramble, and counts errors.
// symbols is the number of OFDM symbols to push through (each carries
// 52·bitsPerSC coded bits).
func SimulateLink(src *rng.Source, mcs ofdm.MCS, sinr float64, symbols int) (LinkResult, error) {
	if symbols < 1 {
		return LinkResult{}, fmt.Errorf("phy: need at least one symbol")
	}
	nbpsc := mcs.Modulation.BitsPerSymbol()
	ncbps := ofdm.NumSubcarriers * nbpsc
	totalCoded := ncbps * symbols

	// How many information bits fit: inverse of puncturing, minus tail.
	infoBits := int(float64(totalCoded)*mcs.CodeRate.Value()) - (constraintLen - 1)
	for CodedBits(infoBits+constraintLen-1, mcs.CodeRate) > totalCoded && infoBits > 0 {
		infoBits--
	}
	if infoBits <= 0 {
		return LinkResult{}, fmt.Errorf("phy: frame too small for %v", mcs)
	}

	// Information bits → scrambled, tail-terminated stream.
	info := make([]byte, infoBits)
	for i := range info {
		if src.Bool(0.5) {
			info[i] = 1
		}
	}
	scrambled := NewScrambler(0x5d).Apply(append([]byte(nil), info...))
	withTail := append(scrambled, make([]byte, constraintLen-1)...)

	coded := ConvEncode(withTail)
	punctured, err := Puncture(coded, mcs.CodeRate)
	if err != nil {
		return LinkResult{}, err
	}
	// Pad to whole OFDM symbols with alternating filler bits.
	padded := append([]byte(nil), punctured...)
	for i := 0; len(padded) < totalCoded; i++ {
		padded = append(padded, byte(i&1))
	}

	// Per-symbol interleave, map, AWGN channel, demap, deinterleave.
	amp := math.Sqrt(sinr)
	noiseVar := 1.0
	llrs := make([]float64, 0, totalCoded)
	rawErrs := 0
	for s := 0; s < symbols; s++ {
		block := padded[s*ncbps : (s+1)*ncbps]
		inter := Interleave(mcs.Modulation, block)
		syms := Map(mcs.Modulation, inter)
		rx := make([]complex128, len(syms))
		for i, x := range syms {
			rx[i] = complex(amp, 0)*x + src.CN(noiseVar)
		}
		// Normalize amplitude back so the demapper sees unit symbols.
		for i := range rx {
			rx[i] /= complex(amp, 0)
		}
		symLLR := DemapLLR(mcs.Modulation, rx, noiseVar/sinr)
		// Count raw (hard-decision) errors before decoding.
		for i, l := range symLLR {
			hard := byte(0)
			if l < 0 {
				hard = 1
			}
			if hard != inter[i] {
				rawErrs++
			}
		}
		llrs = append(llrs, DeinterleaveLLR(mcs.Modulation, symLLR)...)
	}

	// Strip pad, depuncture, decode.
	llrs = llrs[:len(punctured)]
	full, err := Depuncture(llrs, mcs.CodeRate, len(withTail))
	if err != nil {
		return LinkResult{}, err
	}
	decoded := ViterbiDecode(full, true)
	descrambled := NewScrambler(0x5d).Apply(decoded[:infoBits])

	res := LinkResult{BitsSent: infoBits, CodedBits: len(punctured), RawBitErrors: rawErrs}
	for i := range info {
		if descrambled[i] != info[i] {
			res.BitErrors++
		}
	}
	return res, nil
}
