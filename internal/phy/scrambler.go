// Package phy implements a bit-true 802.11 baseband chain: the
// frame-synchronous scrambler, the K=7 (133,171) convolutional encoder
// with the standard puncturing patterns, the per-symbol block interleaver,
// Gray-mapped QAM modulation with soft (max-log LLR) demapping, and a
// soft-decision Viterbi decoder. The testbed's throughput predictions use
// the analytic BER models in package ofdm; this package exists to validate
// those models bit-by-bit (see the phyber example and the cross-check
// tests) and to make the simulated transmissions real enough to decode.
package phy

// Scrambler is the 802.11 frame-synchronous scrambler: a 7-bit LFSR with
// polynomial x⁷ + x⁴ + 1. Scrambling is an involution: running the same
// state over scrambled data descrambles it.
type Scrambler struct {
	state uint8 // 7-bit shift register, never zero
}

// NewScrambler returns a scrambler seeded with the given 7-bit state
// (seed 0 is replaced by the all-ones state, as a zero state would lock
// the LFSR).
func NewScrambler(seed uint8) *Scrambler {
	seed &= 0x7f
	if seed == 0 {
		seed = 0x7f
	}
	return &Scrambler{state: seed}
}

// NextBit advances the LFSR and returns the next scrambling bit.
func (s *Scrambler) NextBit() byte {
	b := ((s.state >> 6) ^ (s.state >> 3)) & 1
	s.state = ((s.state << 1) | b) & 0x7f
	return b
}

// Apply scrambles (or descrambles) bits in place and returns them.
func (s *Scrambler) Apply(bits []byte) []byte {
	for i := range bits {
		bits[i] ^= s.NextBit()
	}
	return bits
}
