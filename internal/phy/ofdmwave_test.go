package phy

import (
	"math"
	"math/cmplx"
	"testing"

	"copa/internal/channel"
	"copa/internal/ofdm"
	"copa/internal/rng"
)

func TestFFTKnown(t *testing.T) {
	// DFT of an impulse is all-ones.
	x := make([]complex128, 8)
	x[0] = 1
	got, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
	// DFT of a constant is an impulse at DC.
	for i := range x {
		x[i] = 2
	}
	got, _ = FFT(x)
	if cmplx.Abs(got[0]-16) > 1e-12 {
		t.Errorf("DC bin %v, want 16", got[0])
	}
	for i := 1; i < 8; i++ {
		if cmplx.Abs(got[i]) > 1e-12 {
			t.Errorf("bin %d nonzero: %v", i, got[i])
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	src := rng.New(1)
	x := make([]complex128, 64)
	for i := range x {
		x[i] = src.CN(1)
	}
	fd, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := IFFT(fd)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(back[i]-x[i]) > 1e-10 {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := FFT(make([]complex128, 52)); err == nil {
		t.Error("52-point FFT should fail")
	}
	if _, err := FFT(nil); err == nil {
		t.Error("empty FFT should fail")
	}
}

func TestOFDMModulateRoundTrip(t *testing.T) {
	src := rng.New(2)
	data := make([]complex128, ofdm.NumSubcarriers)
	for i := range data {
		data[i] = src.CN(1)
	}
	wave, err := OFDMModulate(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(wave) != ofdm.FFTSize+cpSamples {
		t.Fatalf("waveform length %d", len(wave))
	}
	// CP is a copy of the tail.
	for i := 0; i < cpSamples; i++ {
		if cmplx.Abs(wave[i]-wave[ofdm.FFTSize+i]) > 1e-12 {
			t.Fatal("cyclic prefix mismatch")
		}
	}
	back, err := OFDMDemodulate(wave)
	if err != nil {
		t.Fatal(err)
	}
	for k := range data {
		if cmplx.Abs(back[k]-data[k]) > 1e-10 {
			t.Fatalf("subcarrier %d: %v vs %v", k, back[k], data[k])
		}
	}
}

// TestWaveformMatchesFrequencyModel is the bedrock cross-check: sending a
// real OFDM waveform through time-domain convolution with the channel's
// taps must produce, after demodulation, exactly the per-subcarrier
// multiplication by the channel model's frequency response. If this
// holds, every SINR in the repository is grounded in waveform physics.
func TestWaveformMatchesFrequencyModel(t *testing.T) {
	src := rng.New(3)
	link := channel.NewLink(src.Split(1), 1, 1, 1)

	// The channel's taps for the single antenna pair, as a time-domain
	// filter.
	taps := make([]complex128, channel.NumTaps)
	for l := 0; l < channel.NumTaps; l++ {
		taps[l] = link.Taps[l].At(0, 0)
	}

	data := make([]complex128, ofdm.NumSubcarriers)
	for i := range data {
		data[i] = src.CN(1)
	}
	wave, err := OFDMModulate(data)
	if err != nil {
		t.Fatal(err)
	}
	rx := ConvolveCircularSafe(wave, taps)
	got, err := OFDMDemodulate(rx)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for k := range data {
		want := link.Subcarriers[k].At(0, 0) * data[k]
		if d := cmplx.Abs(got[k] - want); d > worst {
			worst = d
		}
	}
	if worst > 1e-10 {
		t.Errorf("waveform vs frequency model: worst deviation %g", worst)
	}
}

// TestWaveformCPAbsorbsDelaySpread: without enough cyclic prefix the
// equality above would break; verify the CP covers the 8-tap channel.
func TestWaveformCPAbsorbsDelaySpread(t *testing.T) {
	if channel.NumTaps > cpSamples {
		t.Fatalf("channel has %d taps but the CP only covers %d samples", channel.NumTaps, cpSamples)
	}
}

func TestWaveformPAPRReasonable(t *testing.T) {
	// §4.1 notes subcarrier selection could raise PAPR but scrambled data
	// keeps it in check. Measure PAPR with and without ~8 dropped
	// subcarriers: it should stay within the usual OFDM range (< ~13 dB).
	src := rng.New(4)
	papr := func(drop bool) float64 {
		worst := 0.0
		for trial := 0; trial < 50; trial++ {
			data := make([]complex128, ofdm.NumSubcarriers)
			for i := range data {
				data[i] = src.CN(1)
			}
			if drop {
				for i := 0; i < 8; i++ {
					data[i*6] = 0
				}
			}
			wave, err := OFDMModulate(data)
			if err != nil {
				t.Fatal(err)
			}
			var peak, mean float64
			for _, s := range wave {
				p := real(s)*real(s) + imag(s)*imag(s)
				mean += p
				if p > peak {
					peak = p
				}
			}
			mean /= float64(len(wave))
			if r := 10 * math.Log10(peak/mean); r > worst {
				worst = r
			}
		}
		return worst
	}
	full, dropped := papr(false), papr(true)
	if dropped > 14 || full > 14 {
		t.Errorf("PAPR out of OFDM range: full %.1f dB, dropped %.1f dB", full, dropped)
	}
	t.Logf("worst PAPR: full %.1f dB, with drops %.1f dB", full, dropped)
}
