package mac

import (
	"time"

	"copa/internal/rng"
)

// ExchangeSim models the latency of completing one ITS exchange when
// several APs contend to send their ITS INIT (§3.1): simultaneous backoff
// expiry garbles the colliding frames, the losers double their contention
// windows and retry, and the exchange completes once a single INIT gets
// through and the REQ/ACK handshake follows. This quantifies the protocol
// cost the analytic Table 1 model summarizes with a mean backoff.
type ExchangeSim struct {
	// Contenders is the number of APs with traffic racing to send INIT.
	Contenders int
	// Model supplies the payload sizes for the REQ/ACK legs.
	Model OverheadModel
	// Coherence controls whether the CSI payload rides along (a refresh
	// is due) — matches refreshFraction's amortization.
	Coherence time.Duration
}

// ExchangeOutcome reports one simulated exchange.
type ExchangeOutcome struct {
	// Latency from the medium going idle to the ACK's end.
	Latency time.Duration
	// Collisions suffered before a clean INIT.
	Collisions int
}

// exchangeAirtime is the INIT→REQ→ACK on-air time, including payloads if
// a CSI refresh is due this exchange.
func (e ExchangeSim) exchangeAirtime(withPayload bool) time.Duration {
	t := itsInitAirtime() + SIFS +
		FrameAirtime(48+headerBytes+trailerBytes, ControlRateBps) + SIFS +
		FrameAirtime(49+headerBytes+trailerBytes, ControlRateBps) + SIFS
	if withPayload {
		t += payloadAirtime(2*e.Model.CSIBytesPerLink+e.Model.PrecoderBytes+e.Model.PowerBytes, e.Model.PayloadRateBps)
	}
	return t
}

// Run simulates one exchange: slotted contention among Contenders, each
// drawing from [0, CW] with binary exponential backoff after collisions
// (a collision costs the garbled INIT's airtime plus a DIFS before the
// next round). The payload rides with probability refreshFraction.
func (e ExchangeSim) Run(src *rng.Source) ExchangeOutcome {
	n := e.Contenders
	if n < 1 {
		n = 1
	}
	cw := make([]int, n)
	backoff := make([]int, n)
	for i := range cw {
		cw[i] = CWMin
		backoff[i] = src.Intn(cw[i] + 1)
	}
	var latency time.Duration
	latency += DIFS
	collisions := 0
	for {
		// Advance to the earliest expiry.
		min := backoff[0]
		for _, b := range backoff[1:] {
			if b < min {
				min = b
			}
		}
		latency += time.Duration(min) * SlotTime
		winners := 0
		for i := range backoff {
			backoff[i] -= min
			if backoff[i] == 0 {
				winners++
			}
		}
		if winners == 1 {
			break
		}
		// Collision: the garbled INITs occupy the medium, then everyone
		// involved backs off harder.
		collisions++
		latency += itsInitAirtime() + DIFS
		for i := range backoff {
			if backoff[i] == 0 {
				cw[i] = cw[i]*2 + 1
				if cw[i] > CWMax {
					cw[i] = CWMax
				}
				backoff[i] = 1 + src.Intn(cw[i]+1)
			}
		}
	}
	withPayload := src.Float64() < refreshFraction(e.Coherence)
	latency += e.exchangeAirtime(withPayload)
	return ExchangeOutcome{Latency: latency, Collisions: collisions}
}

// MeanLatency runs the simulation `trials` times and returns the average
// latency and collision rate.
func (e ExchangeSim) MeanLatency(src *rng.Source, trials int) (time.Duration, float64) {
	var total time.Duration
	collided := 0
	for i := 0; i < trials; i++ {
		out := e.Run(src)
		total += out.Latency
		if out.Collisions > 0 {
			collided++
		}
	}
	if trials == 0 {
		return 0, 0
	}
	return total / time.Duration(trials), float64(collided) / float64(trials)
}
