package mac

import (
	"math"
	"testing"

	"copa/internal/rng"
)

func TestBlockAckBitmap(t *testing.T) {
	ok := []bool{true, false, true, true}
	ba, err := BuildBlockAck(100, ok)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ok {
		if ba.Acked(uint16(100+i)) != v {
			t.Fatalf("seq %d acked=%v, want %v", 100+i, ba.Acked(uint16(100+i)), v)
		}
	}
	if ba.AckCount() != 3 {
		t.Errorf("count %d", ba.AckCount())
	}
	// Out-of-window sequences are unacked.
	if ba.Acked(100 + BAWindow) {
		t.Error("out-of-window seq acked")
	}
	if _, err := BuildBlockAck(0, make([]bool, BAWindow+1)); err == nil {
		t.Error("oversized window accepted")
	}
}

func TestBlockAckSeqWrap(t *testing.T) {
	// Window straddling the 12-bit sequence space boundary.
	ok := []bool{true, true}
	ba, err := BuildBlockAck(0x0fff, ok)
	if err != nil {
		t.Fatal(err)
	}
	if !ba.Acked(0x0fff) {
		t.Error("start seq not acked")
	}
	if !ba.Acked(0x1000) { // wraps to offset 1 modulo 4096
		t.Error("wrapped seq not acked")
	}
}

func TestSimulateARQLossless(t *testing.T) {
	res, err := SimulateARQ(rng.New(1), 0, 50, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Offered || res.Transmissions != res.Delivered {
		t.Errorf("lossless ARQ: %+v", res)
	}
	if res.Efficiency != 1 {
		t.Errorf("efficiency %g", res.Efficiency)
	}
}

func TestSimulateARQEfficiencyMatchesFER(t *testing.T) {
	// The analytic model assumes goodput = rate·(1−FER); the ARQ
	// simulation's airtime efficiency must converge to exactly that.
	for _, fer := range []float64{0.05, 0.1, 0.3} {
		res, err := SimulateARQ(rng.New(int64(fer*1000)), fer, 2000, 48, 16)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Efficiency-(1-fer)) > 0.02 {
			t.Errorf("FER %.2f: efficiency %.3f, want %.3f", fer, res.Efficiency, 1-fer)
		}
		// Mean attempts ≈ 1/(1−fer) for unlimited-ish retries.
		if math.Abs(res.MeanAttempts-1/(1-fer)) > 0.05 {
			t.Errorf("FER %.2f: attempts %.3f, want %.3f", fer, res.MeanAttempts, 1/(1-fer))
		}
	}
}

func TestSimulateARQValidation(t *testing.T) {
	if _, err := SimulateARQ(rng.New(1), 1.0, 10, 32, 3); err == nil {
		t.Error("FER 1.0 accepted")
	}
	if _, err := SimulateARQ(rng.New(1), 0.1, 10, 0, 3); err == nil {
		t.Error("zero aggregate accepted")
	}
	if _, err := SimulateARQ(rng.New(1), 0.1, 10, BAWindow+1, 3); err == nil {
		t.Error("oversized aggregate accepted")
	}
}
