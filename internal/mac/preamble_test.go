package mac

import (
	"testing"
	"testing/quick"

	"copa/internal/ofdm"
)

func TestSubcarrierMapRoundTrip(t *testing.T) {
	used := make([]bool, ofdm.NumSubcarriers)
	for k := range used {
		used[k] = k%3 != 0
	}
	m, err := NewSubcarrierMap(used)
	if err != nil {
		t.Fatal(err)
	}
	for k := range used {
		if m.Used(k) != used[k] {
			t.Fatalf("bit %d mismatch", k)
		}
	}
	wire := m.Marshal()
	if len(wire) != 7 {
		t.Errorf("wire size %d, want 7", len(wire))
	}
	back, err := UnmarshalSubcarrierMap(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Error("wire round trip mismatch")
	}
}

func TestSubcarrierMapValidation(t *testing.T) {
	if _, err := NewSubcarrierMap(make([]bool, 10)); err == nil {
		t.Error("wrong flag count accepted")
	}
	if _, err := UnmarshalSubcarrierMap([]byte{1, 2}); err == nil {
		t.Error("short wire form accepted")
	}
	var m SubcarrierMap
	if m.Used(-1) || m.Used(ofdm.NumSubcarriers) {
		t.Error("out-of-range indices should read false")
	}
}

func TestSubcarrierMapFromPowers(t *testing.T) {
	powers := make([][]float64, ofdm.NumSubcarriers)
	for k := range powers {
		powers[k] = []float64{0, 0}
	}
	powers[3][1] = 0.5
	powers[10][0] = 0.1
	m, err := SubcarrierMapFromPowers(powers)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 2 || !m.Used(3) || !m.Used(10) || m.Used(4) {
		t.Errorf("map from powers wrong: count=%d", m.Count())
	}
}

func TestQuickSubcarrierMapCount(t *testing.T) {
	f := func(bits uint64) bool {
		used := make([]bool, ofdm.NumSubcarriers)
		want := 0
		for k := range used {
			if bits&(1<<(k%64)) != 0 && k%2 == 0 {
				used[k] = true
				want++
			}
		}
		m, err := NewSubcarrierMap(used)
		return err == nil && m.Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
