package mac

import (
	"fmt"

	"copa/internal/rng"
)

// Block acknowledgement (802.11n §9.10): an A-MPDU's recipient reports
// per-MPDU success in a 64-bit bitmap; the sender retransmits only the
// holes. This is the mechanism that turns a per-MPDU frame-error rate
// into goodput ≈ rate·(1−FER) — the identity the analytic throughput
// model (ofdm.JointRate) assumes, verified here by simulation.

// BAWindow is the standard block-ack reordering window size.
const BAWindow = 64

// BlockAck is a compressed block-ack bitmap starting at a sequence number.
type BlockAck struct {
	StartSeq uint16
	Bitmap   uint64
}

// Acked reports whether sequence seq is acknowledged.
func (b BlockAck) Acked(seq uint16) bool {
	off := int(seq-b.StartSeq) & 0xfff
	if off >= BAWindow {
		return false
	}
	return b.Bitmap&(1<<off) != 0
}

// AckCount returns the number of acknowledged MPDUs in the window.
func (b BlockAck) AckCount() int {
	n := 0
	for x := b.Bitmap; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// BuildBlockAck assembles the bitmap from per-MPDU outcomes for the
// window starting at startSeq.
func BuildBlockAck(startSeq uint16, ok []bool) (BlockAck, error) {
	if len(ok) > BAWindow {
		return BlockAck{}, fmt.Errorf("mac: %d MPDUs exceed the %d-frame BA window", len(ok), BAWindow)
	}
	ba := BlockAck{StartSeq: startSeq}
	for i, v := range ok {
		if v {
			ba.Bitmap |= 1 << i
		}
	}
	return ba, nil
}

// ARQResult summarizes a block-ack retransmission simulation.
type ARQResult struct {
	// Offered is the number of distinct MPDUs injected.
	Offered int
	// Delivered counts MPDUs eventually acknowledged.
	Delivered int
	// Transmissions counts every MPDU send, including retries.
	Transmissions int
	// MeanAttempts is Transmissions / Delivered.
	MeanAttempts float64
	// Efficiency is Delivered / Transmissions — the airtime fraction
	// carrying new data, which must converge to 1−FER for independent
	// losses.
	Efficiency float64
}

// SimulateARQ runs a saturated sender for `rounds` A-MPDUs of up to
// perAggregate MPDUs each, each MPDU independently lost with probability
// fer, with real block-ack window semantics: the window cannot advance
// past the oldest unacknowledged MPDU, holes are retransmitted ahead of
// new data, and an MPDU is abandoned after maxRetries failures (a window
// stall then resolves by advancing past it).
func SimulateARQ(src *rng.Source, fer float64, rounds, perAggregate, maxRetries int) (ARQResult, error) {
	if perAggregate < 1 || perAggregate > BAWindow {
		return ARQResult{}, fmt.Errorf("mac: aggregate size %d out of range", perAggregate)
	}
	if fer < 0 || fer >= 1 {
		return ARQResult{}, fmt.Errorf("mac: FER %g out of range", fer)
	}
	var res ARQResult
	retries := make(map[uint16]int) // unacked seq → attempts so far
	winStart := uint16(0)
	next := uint16(0) // next fresh sequence number

	off := func(s uint16) int { return int(s-winStart) & 0xfff }

	for r := 0; r < rounds; r++ {
		// Assemble the batch: pending retransmissions (oldest first),
		// then fresh MPDUs, all within [winStart, winStart+BAWindow).
		batch := make([]uint16, 0, perAggregate)
		for o := 0; o < BAWindow && len(batch) < perAggregate; o++ {
			s := winStart + uint16(o)
			if s == next {
				break
			}
			if _, pending := retries[s]; pending {
				batch = append(batch, s)
			}
		}
		for len(batch) < perAggregate && off(next) < BAWindow {
			batch = append(batch, next)
			retries[next] = 0
			res.Offered++
			next++
		}
		if len(batch) == 0 {
			continue
		}
		// Transmit and build the block ack.
		ok := make([]bool, BAWindow)
		for _, s := range batch {
			res.Transmissions++
			if !src.Bool(fer) {
				ok[off(s)] = true
			}
		}
		ba := BlockAck{StartSeq: winStart}
		for o, v := range ok {
			if v {
				ba.Bitmap |= 1 << o
			}
		}
		// Process outcomes.
		for _, s := range batch {
			if ba.Acked(s) {
				res.Delivered++
				delete(retries, s)
				continue
			}
			retries[s]++
			if retries[s] > maxRetries {
				delete(retries, s) // abandoned
			}
		}
		// Advance the window past fully resolved sequences.
		for winStart != next {
			if _, pending := retries[winStart]; pending {
				break
			}
			winStart++
		}
	}
	if res.Delivered > 0 {
		res.MeanAttempts = float64(res.Transmissions) / float64(res.Delivered)
	}
	if res.Transmissions > 0 {
		res.Efficiency = float64(res.Delivered) / float64(res.Transmissions)
	}
	return res, nil
}
