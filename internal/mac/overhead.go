package mac

import "time"

// OverheadModel parameterizes the analytic MAC-overhead accounting behind
// the paper's Table 1. Control frames travel at the base rate; the bulky
// CSI/precoder payloads ride at a higher AP-to-AP rate (the APs hear each
// other well — they are close enough to interfere).
type OverheadModel struct {
	// CSIBytesPerLink is the compressed size of one follower→client CSI
	// payload (csi.EncodeLink output for the scenario's link shape).
	CSIBytesPerLink int
	// PrecoderBytes is the compressed follower precoder in the ITS ACK.
	PrecoderBytes int
	// PowerBytes is the quantized per-subcarrier power matrix in the ACK.
	PowerBytes int
	// PayloadRateBps is the PHY rate for CSI/precoder payloads.
	PayloadRateBps float64
}

// DefaultOverheadModel mirrors the paper's 4×2 setting with a compression
// ratio of ≈2 on WARP-format CSI.
func DefaultOverheadModel() OverheadModel {
	return OverheadModel{
		CSIBytesPerLink: 420,
		PrecoderBytes:   420,
		PowerBytes:      208,
		PayloadRateBps:  54e6,
	}
}

// DataOverheadFraction is the scheme-independent share of a TXOP consumed
// by the data path itself: PLCP preamble, MAC headers, A-MPDU delimiters,
// block ACK and SIFS. Calibrated so a 65 Mb/s MCS7 sender nets the
// paper's 57.5 Mb/s over a 4 ms TXOP once the CTS-to-self cost is added
// (§4.2).
const DataOverheadFraction = 0.085

// contention is the cost of acquiring the medium once: DIFS plus the mean
// initial backoff.
func contention() time.Duration { return DIFS + MeanBackoff() }

// refreshFraction is the fraction of TXOPs in which coherence-time-scoped
// state (CSI, precoders) must be retransmitted: once per coherence time,
// clamped to every TXOP for coherence times shorter than a TXOP (§3.1).
func refreshFraction(coherence time.Duration) float64 {
	if coherence <= 0 {
		return 1
	}
	f := float64(TxOp) / float64(coherence)
	if f > 1 {
		return 1
	}
	return f
}

func payloadAirtime(bytes int, rateBps float64) time.Duration {
	return time.Duration(float64(bytes*8) / rateBps * float64(time.Second))
}

// asFraction converts per-TXOP overhead into a throughput cost: the share
// of airtime not carrying data.
func asFraction(overhead time.Duration) float64 {
	return float64(overhead) / float64(overhead+TxOp)
}

// CSMACTSOverhead returns the throughput cost of CSMA with CTS-to-self:
// medium acquisition plus the CTS frame and a SIFS, per TXOP.
func CSMACTSOverhead() float64 {
	return asFraction(contention() + FrameAirtime(CTSBytes, ControlRateBps) + SIFS)
}

// CSMARTSOverhead returns the throughput cost of CSMA with a full
// RTS/CTS handshake per TXOP.
func CSMARTSOverhead() float64 {
	oh := contention() +
		FrameAirtime(RTSBytes, ControlRateBps) + SIFS +
		FrameAirtime(CTSBytes, ControlRateBps) + SIFS
	return asFraction(oh)
}

// itsInitAirtime is the ITS INIT frame on the wire (16-byte body plus
// framing), which also provides the virtual-carrier-sense function of a
// CTS-to-self.
func itsInitAirtime() time.Duration {
	return FrameAirtime(16+headerBytes+trailerBytes, ControlRateBps)
}

// COPASeqOverhead returns the throughput cost per TXOP of COPA when the
// decision is sequential transmission. Every TXOP pays contention plus an
// ITS INIT (the NAV announcement); the full REQ/ACK exchange with CSI
// payloads recurs only once per coherence time, because after a
// sequential verdict the loser stays silent for the rest of it (§3.1).
func (m OverheadModel) COPASeqOverhead(coherence time.Duration) float64 {
	perTXOP := contention() + itsInitAirtime() + SIFS
	exchange := FrameAirtime(48+headerBytes+trailerBytes, ControlRateBps) + SIFS + // REQ skeleton
		FrameAirtime(49+headerBytes+trailerBytes, ControlRateBps) + SIFS + // ACK skeleton
		payloadAirtime(2*m.CSIBytesPerLink, m.PayloadRateBps)
	oh := perTXOP + time.Duration(refreshFraction(coherence)*float64(exchange))
	return asFraction(oh)
}

// COPAConcOverhead returns the throughput cost per TXOP of COPA when
// transmitting concurrently: contention, a per-TXOP INIT and a slim ACK
// (concurrent senders must re-synchronize each TXOP), plus the
// coherence-scoped REQ with CSI and the ACK's precoder/power payloads.
func (m OverheadModel) COPAConcOverhead(coherence time.Duration) float64 {
	perTXOP := contention() + itsInitAirtime() + SIFS +
		FrameAirtime(49+headerBytes+trailerBytes, ControlRateBps) + SIFS
	exchange := FrameAirtime(48+headerBytes+trailerBytes, ControlRateBps) + SIFS +
		payloadAirtime(2*m.CSIBytesPerLink+m.PrecoderBytes+m.PowerBytes, m.PayloadRateBps)
	oh := perTXOP + time.Duration(refreshFraction(coherence)*float64(exchange))
	return asFraction(oh)
}

// ITSTimeouts bundles the per-leg reply deadlines of the ITS exchange,
// derived from frame airtimes: the sent frame's time on air, a SIFS of
// turnaround, the expected reply's airtime (control skeleton at the base
// rate, CSI/precoder payloads at the AP–AP rate), a SIFS of guard, and
// one slot of scheduling slack. A sender that hears nothing within its
// leg deadline must assume the frame (or its reply) was lost.
type ITSTimeouts struct {
	// REQ is how long an INIT sender waits for the follower's REQ — the
	// longest leg, because the REQ carries two compressed CSI payloads.
	REQ time.Duration
	// ACK is how long a REQ sender waits for the leader's ACK, which
	// carries the precoder and power payloads plus the leader's strategy
	// computation (budgeted at one extra slot).
	ACK time.Duration
}

// ITSTimeouts derives the per-leg deadlines from the model's payload
// sizes and rates.
func (m OverheadModel) ITSTimeouts() ITSTimeouts {
	req := itsInitAirtime() + SIFS +
		FrameAirtime(48+headerBytes+trailerBytes, ControlRateBps) +
		payloadAirtime(2*m.CSIBytesPerLink, m.PayloadRateBps) +
		SIFS + SlotTime
	ack := FrameAirtime(48+headerBytes+trailerBytes, ControlRateBps) + SIFS +
		FrameAirtime(49+headerBytes+trailerBytes, ControlRateBps) +
		payloadAirtime(m.PrecoderBytes+m.PowerBytes, m.PayloadRateBps) +
		SIFS + 2*SlotTime
	return ITSTimeouts{REQ: req, ACK: ack}
}

// Clamp raises both deadlines to at least floor — real media (UDP, OS
// schedulers) need far more slack than the pure airtime arithmetic;
// simulated media keep the exact values with a zero floor.
func (t ITSTimeouts) Clamp(floor time.Duration) ITSTimeouts {
	if t.REQ < floor {
		t.REQ = floor
	}
	if t.ACK < floor {
		t.ACK = floor
	}
	return t
}

// OverheadRow is one line of Table 1.
type OverheadRow struct {
	Coherence time.Duration
	COPAConc  float64
	COPASeq   float64
	CSMACTS   float64
	CSMARTS   float64
}

// Table1 reproduces the paper's Table 1 for the given coherence times
// (the paper uses 4 ms, 30 ms and 1000 ms). Values are fractions (0–1).
func (m OverheadModel) Table1(coherences ...time.Duration) []OverheadRow {
	rows := make([]OverheadRow, len(coherences))
	for i, tc := range coherences {
		rows[i] = OverheadRow{
			Coherence: tc,
			COPAConc:  m.COPAConcOverhead(tc),
			COPASeq:   m.COPASeqOverhead(tc),
			CSMACTS:   CSMACTSOverhead(),
			CSMARTS:   CSMARTSOverhead(),
		}
	}
	return rows
}
