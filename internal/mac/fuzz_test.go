package mac

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the wire-format parsers: any byte string must
// either fail cleanly or round-trip losslessly. Run with
// `go test -fuzz FuzzITS ./internal/mac` for a real campaign; under plain
// `go test` the seed corpus below executes as regression tests.

// addTransportSeeds enriches a target's corpus with the frames a lossy
// medium actually produces: truncations of a valid marshal (mid-header,
// mid-body, one byte short) and frames whose header survives intact but
// whose body no longer matches the CRC.
func addTransportSeeds(f *testing.F, valid []byte) {
	f.Helper()
	for _, n := range []int{1, headerBytes - 1, headerBytes, len(valid) / 2, len(valid) - 1} {
		if n > 0 && n < len(valid) {
			f.Add(append([]byte(nil), valid[:n]...))
		}
	}
	if len(valid) > headerBytes {
		crcFail := append([]byte(nil), valid...)
		crcFail[headerBytes] ^= 0x01 // first body byte: header stays valid
		f.Add(crcFail)
	}
}

func FuzzITSInitParse(f *testing.F) {
	f.Add([]byte{})
	f.Add((&ITSInit{Leader: Addr{1}, Client: Addr{2}, AirtimeUS: 4000}).Marshal())
	seed := (&ITSInit{AirtimeUS: 1}).Marshal()
	seed[len(seed)-1] ^= 0xff
	f.Add(seed)
	addTransportSeeds(f, (&ITSInit{Leader: Addr{3}, Client: Addr{4}, AirtimeUS: 2000}).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalITSInit(data)
		if err != nil {
			return
		}
		if !bytes.Equal(got.Marshal(), data) {
			t.Fatalf("accepted frame does not round-trip")
		}
	})
}

func FuzzITSReqParse(f *testing.F) {
	f.Add([]byte{})
	f.Add((&ITSReq{CSIToClient1: []byte{1, 2}, CSIToClient2: []byte{3}}).Marshal())
	addTransportSeeds(f, (&ITSReq{
		Leader:       Addr{1},
		Follower:     Addr{2},
		AirtimeUS:    4000,
		CSIToClient1: []byte{9, 8, 7, 6},
		CSIToClient2: []byte{5, 4, 3},
	}).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalITSReq(data)
		if err != nil {
			return
		}
		if !bytes.Equal(got.Marshal(), data) {
			t.Fatalf("accepted frame does not round-trip")
		}
	})
}

func FuzzITSAckParse(f *testing.F) {
	f.Add([]byte{})
	f.Add((&ITSAck{Decision: DecideSequential}).Marshal())
	f.Add((&ITSAck{
		Decision:         DecideConcurrent,
		FollowerPrecoder: []byte{1},
		FollowerPowerMW:  [][]float64{{0.5}},
	}).Marshal())
	addTransportSeeds(f, (&ITSAck{
		Leader:           Addr{1},
		Follower:         Addr{2},
		Decision:         DecideConcurrent,
		FollowerPrecoder: []byte{1, 2, 3, 4},
		FollowerPowerMW:  [][]float64{{0.25, 0.75}},
	}).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalITSAck(data)
		if err != nil {
			return
		}
		// Power values quantize to µW on the wire, so compare the
		// re-marshaled form for byte equality.
		if !bytes.Equal(got.Marshal(), data) {
			t.Fatalf("accepted frame does not round-trip")
		}
	})
}
