package mac

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the wire-format parsers: any byte string must
// either fail cleanly or round-trip losslessly. Run with
// `go test -fuzz FuzzITS ./internal/mac` for a real campaign; under plain
// `go test` the seed corpus below executes as regression tests.

func FuzzITSInitParse(f *testing.F) {
	f.Add([]byte{})
	f.Add((&ITSInit{Leader: Addr{1}, Client: Addr{2}, AirtimeUS: 4000}).Marshal())
	seed := (&ITSInit{AirtimeUS: 1}).Marshal()
	seed[len(seed)-1] ^= 0xff
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalITSInit(data)
		if err != nil {
			return
		}
		if !bytes.Equal(got.Marshal(), data) {
			t.Fatalf("accepted frame does not round-trip")
		}
	})
}

func FuzzITSReqParse(f *testing.F) {
	f.Add([]byte{})
	f.Add((&ITSReq{CSIToClient1: []byte{1, 2}, CSIToClient2: []byte{3}}).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalITSReq(data)
		if err != nil {
			return
		}
		if !bytes.Equal(got.Marshal(), data) {
			t.Fatalf("accepted frame does not round-trip")
		}
	})
}

func FuzzITSAckParse(f *testing.F) {
	f.Add([]byte{})
	f.Add((&ITSAck{Decision: DecideSequential}).Marshal())
	f.Add((&ITSAck{
		Decision:         DecideConcurrent,
		FollowerPrecoder: []byte{1},
		FollowerPowerMW:  [][]float64{{0.5}},
	}).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalITSAck(data)
		if err != nil {
			return
		}
		// Power values quantize to µW on the wire, so compare the
		// re-marshaled form for byte equality.
		if !bytes.Equal(got.Marshal(), data) {
			t.Fatalf("accepted frame does not round-trip")
		}
	})
}
