package mac

import (
	"fmt"

	"copa/internal/ofdm"
)

// SubcarrierMap is the bitmap COPA places in the A-MPDU preamble to tell
// the receiver which subcarriers to attempt to decode (§3.2): dropped
// subcarriers carry no data, and a receiver that tried to decode them
// would feed garbage into its single Viterbi decoder.
type SubcarrierMap [(ofdm.NumSubcarriers + 7) / 8]byte

// NewSubcarrierMap builds a map from per-subcarrier usage flags.
func NewSubcarrierMap(used []bool) (SubcarrierMap, error) {
	var m SubcarrierMap
	if len(used) != ofdm.NumSubcarriers {
		return m, fmt.Errorf("mac: subcarrier map needs %d flags, got %d", ofdm.NumSubcarriers, len(used))
	}
	for k, u := range used {
		if u {
			m[k/8] |= 1 << (k % 8)
		}
	}
	return m, nil
}

// SubcarrierMapFromPowers derives the map from a power allocation: a
// subcarrier is decodable if any stream carries power on it.
func SubcarrierMapFromPowers(powersMW [][]float64) (SubcarrierMap, error) {
	used := make([]bool, len(powersMW))
	for k, row := range powersMW {
		for _, p := range row {
			if p > 0 {
				used[k] = true
				break
			}
		}
	}
	return NewSubcarrierMap(used)
}

// Used reports whether subcarrier k carries data.
func (m SubcarrierMap) Used(k int) bool {
	if k < 0 || k >= ofdm.NumSubcarriers {
		return false
	}
	return m[k/8]&(1<<(k%8)) != 0
}

// Count returns the number of used subcarriers.
func (m SubcarrierMap) Count() int {
	n := 0
	for k := 0; k < ofdm.NumSubcarriers; k++ {
		if m.Used(k) {
			n++
		}
	}
	return n
}

// Marshal returns the map's fixed wire representation (7 bytes for 52
// subcarriers — the preamble cost of COPA's selective decoding).
func (m SubcarrierMap) Marshal() []byte {
	out := make([]byte, len(m))
	copy(out, m[:])
	return out
}

// UnmarshalSubcarrierMap parses a marshaled map.
func UnmarshalSubcarrierMap(data []byte) (SubcarrierMap, error) {
	var m SubcarrierMap
	if len(data) != len(m) {
		return m, fmt.Errorf("%w: subcarrier map length %d", ErrBadFrame, len(data))
	}
	copy(m[:], data)
	return m, nil
}
