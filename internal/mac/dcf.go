package mac

import (
	"time"

	"copa/internal/rng"
)

// DCF is a slotted event-driven simulator of 802.11 distributed
// coordination: n stations with saturated downlink queues contend with
// binary exponential backoff; two of them may be a COPA pair that, after
// an ITS exchange resolving to sequential transmission, win two
// consecutive TXOPs. The simulator measures per-station airtime shares,
// which quantifies the fairness concern §3.1 raises — and the fix it
// proposes (a deferred contention window after a sequential pair), which
// the paper leaves to future work and we implement here.
type DCF struct {
	// Stations is the number of contending senders (≥ 2).
	Stations int
	// COPAPair marks stations 0 and 1 as a COPA pair that coordinates
	// via ITS and sends sequentially after each exchange.
	COPAPair bool
	// Deference enables the §3.1 modification: after a sequential pair
	// transmission, the pair's next contention uses a window drawn from
	// [CWMin+1, 2·CWMin+1] instead of [0, CWMin].
	Deference bool
}

// DCFStats summarizes a simulation run.
type DCFStats struct {
	// Airtime[i] is station i's share of total TXOP airtime (sums to 1).
	Airtime []float64
	// Collisions is the fraction of contention rounds that collided.
	Collisions float64
	// JainIndex is Jain's fairness index over per-station airtime.
	JainIndex float64
	// TXOPs is the number of transmit opportunities granted.
	TXOPs int
}

// Run simulates the given number of TXOP grants and reports airtime
// shares. The simulation is slot-accurate for contention and treats every
// TXOP as the standard 4 ms.
func (d DCF) Run(src *rng.Source, txops int) DCFStats {
	n := d.Stations
	if n < 2 {
		panic("mac: DCF needs at least 2 stations")
	}
	backoff := make([]int, n)
	cw := make([]int, n)
	airtime := make([]time.Duration, n)
	for i := range cw {
		cw[i] = CWMin
		backoff[i] = src.Intn(cw[i] + 1)
	}
	// pendingPairTurn ≥ 0 means that pair member owns the next TXOP
	// without contending (the second half of a sequential decision).
	pendingPairTurn := -1
	// deferNext: the pair just finished its double TXOP and must use the
	// deferred window on its next contention.
	deferNext := false

	granted := 0
	rounds, collisions := 0, 0
	for granted < txops {
		if pendingPairTurn >= 0 {
			airtime[pendingPairTurn] += TxOp
			granted++
			pendingPairTurn = -1
			if d.Deference {
				deferNext = true
			}
			continue
		}
		// Decrement backoffs to the next expiry.
		min := backoff[0]
		for _, b := range backoff[1:] {
			if b < min {
				min = b
			}
		}
		var winners []int
		for i := range backoff {
			backoff[i] -= min
			if backoff[i] == 0 {
				winners = append(winners, i)
			}
		}
		rounds++
		if len(winners) > 1 {
			// Collision: all involved double their windows and redraw.
			collisions++
			for _, w := range winners {
				cw[w] = cw[w]*2 + 1
				if cw[w] > CWMax {
					cw[w] = CWMax
				}
				backoff[w] = 1 + src.Intn(cw[w]+1)
			}
			continue
		}
		w := winners[0]
		cw[w] = CWMin
		if d.Deference && deferNext && d.COPAPair && (w == 0 || w == 1) {
			// The pair defers: redraw from the shifted window instead of
			// transmitting (models the modified window of §3.1).
			backoff[w] = CWMin + 1 + src.Intn(CWMin+1)
			deferNext = false
			continue
		}
		airtime[w] += TxOp
		granted++
		if d.COPAPair && (w == 0 || w == 1) {
			// The pair's ITS exchange resolved to sequential: the other
			// pair member transmits immediately after, without contending
			// (either AP may lead — DCF randomness picks).
			pendingPairTurn = 1 - w
		}
		backoff[w] = 1 + src.Intn(cw[w]+1)
	}

	var total time.Duration
	for _, a := range airtime {
		total += a
	}
	stats := DCFStats{Airtime: make([]float64, n), TXOPs: granted}
	var sum, sumSq float64
	for i, a := range airtime {
		share := float64(a) / float64(total)
		stats.Airtime[i] = share
		sum += share
		sumSq += share * share
	}
	stats.JainIndex = sum * sum / (float64(n) * sumSq)
	if rounds > 0 {
		stats.Collisions = float64(collisions) / float64(rounds)
	}
	return stats
}
