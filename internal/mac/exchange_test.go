package mac

import (
	"testing"
	"time"

	"copa/internal/rng"
)

func TestExchangeSingleContenderNeverCollides(t *testing.T) {
	e := ExchangeSim{Contenders: 1, Model: DefaultOverheadModel(), Coherence: 30 * time.Millisecond}
	src := rng.New(1)
	for i := 0; i < 200; i++ {
		out := e.Run(src)
		if out.Collisions != 0 {
			t.Fatal("lone contender collided")
		}
		if out.Latency <= DIFS {
			t.Fatal("latency implausibly small")
		}
	}
}

func TestExchangeCollisionRateGrowsWithContenders(t *testing.T) {
	model := DefaultOverheadModel()
	src := rng.New(2)
	var prev float64
	for _, n := range []int{2, 4, 8} {
		e := ExchangeSim{Contenders: n, Model: model, Coherence: 30 * time.Millisecond}
		_, rate := e.MeanLatency(src.Split(uint64(n)), 3000)
		if rate <= prev {
			t.Errorf("collision rate not increasing: %d contenders → %.3f (prev %.3f)", n, rate, prev)
		}
		prev = rate
	}
	// With CWmin=15, two contenders collide ≈1/16 of the time.
	e := ExchangeSim{Contenders: 2, Model: model, Coherence: 30 * time.Millisecond}
	_, rate := e.MeanLatency(rng.New(3), 6000)
	if rate < 0.02 || rate > 0.15 {
		t.Errorf("2-contender collision rate %.3f, want ≈1/16", rate)
	}
}

func TestExchangeLatencyGrowsWithShortCoherence(t *testing.T) {
	model := DefaultOverheadModel()
	fast := ExchangeSim{Contenders: 2, Model: model, Coherence: 4 * time.Millisecond}
	slow := ExchangeSim{Contenders: 2, Model: model, Coherence: time.Second}
	lf, _ := fast.MeanLatency(rng.New(4), 3000)
	ls, _ := slow.MeanLatency(rng.New(4), 3000)
	if lf <= ls {
		t.Errorf("short coherence (payload every time) should cost more: %v vs %v", lf, ls)
	}
}

func TestExchangeLatencyConsistentWithTable1(t *testing.T) {
	// The simulated mean exchange cost at tc=30 ms should be in the same
	// regime as the analytic per-TXOP overhead (a few percent of 4 ms).
	e := ExchangeSim{Contenders: 2, Model: DefaultOverheadModel(), Coherence: 30 * time.Millisecond}
	mean, _ := e.MeanLatency(rng.New(5), 3000)
	frac := float64(mean) / float64(mean+TxOp)
	analytic := DefaultOverheadModel().COPAConcOverhead(30 * time.Millisecond)
	if frac < analytic/3 || frac > analytic*3 {
		t.Errorf("simulated overhead %.1f%% vs analytic %.1f%%: more than 3x apart",
			frac*100, analytic*100)
	}
}

func BenchmarkExchangeSim(b *testing.B) {
	e := ExchangeSim{Contenders: 4, Model: DefaultOverheadModel(), Coherence: 30 * time.Millisecond}
	src := rng.New(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(src)
	}
}
