package mac

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Addr is a 48-bit MAC address.
type Addr [6]byte

// String renders the address in colon-hex form.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// FrameType discriminates ITS control frames on the wire.
type FrameType uint8

// The three ITS frame types of Fig. 5.
const (
	TypeITSInit FrameType = 1
	TypeITSReq  FrameType = 2
	TypeITSAck  FrameType = 3
)

// Decision is the leader's verdict carried in an ITS ACK (§3.1).
type Decision uint8

// Possible ITS ACK decisions.
const (
	// DecideSequential: the two APs take turns; the follower defers for
	// the rest of the coherence time.
	DecideSequential Decision = 1
	// DecideConcurrent: both APs transmit concurrently with the precoder
	// and power allocation included in the ACK.
	DecideConcurrent Decision = 2
)

// frame wire format:
//
//	magic(2) version(1) type(1) bodyLen(4) body(...) crc32(4)
//
// Control frames double as virtual carrier sense: every ITS frame carries
// an Airtime field announcing the duration of the coordinated transmission
// so third parties defer exactly as they would for RTS/CTS (§3.1).
const (
	frameMagic   = 0x17C5
	frameVersion = 1
	headerBytes  = 8
	trailerBytes = 4
)

// ErrBadFrame is returned for structurally invalid or corrupt frames.
var ErrBadFrame = errors.New("mac: bad ITS frame")

// ITSInit announces an AP's intent to send to a client; its sender
// becomes the Leader if it wins contention (Step 2 of Fig. 5).
type ITSInit struct {
	Leader Addr
	Client Addr
	// AirtimeUS is the announced duration (µs) third parties defer for.
	AirtimeUS uint32
	// TraceCtx is an optional compact trace context
	// (obs.TraceContextBinary) stitching the follower's spans into the
	// leader's trace. Empty TraceCtx marshals to the legacy 16-byte body,
	// so untraced exchanges stay byte-identical on the wire — airtime
	// accounting and golden figures are unchanged unless tracing is
	// actually propagating.
	TraceCtx []byte
}

// ITSReq is the follower's request to join the transmission opportunity;
// it carries the follower's compressed CSI toward both clients (Step 3).
type ITSReq struct {
	Leader, Follower Addr
	Client1, Client2 Addr
	AirtimeUS        uint32
	// CSIToClient1/2 are csi.EncodeLink payloads for the channels from
	// the follower to each client.
	CSIToClient1 []byte
	CSIToClient2 []byte
}

// ITSAck closes the exchange with the leader's chosen strategy; for
// concurrent transmissions it carries the precoding matrices the follower
// must apply (Step 4).
type ITSAck struct {
	Leader, Follower Addr
	Client1, Client2 Addr
	AirtimeUS        uint32
	Decision         Decision
	// FollowerPrecoder is a csi.EncodePrecoder payload (empty for
	// sequential decisions).
	FollowerPrecoder []byte
	// FollowerPowerMW is the per-subcarrier power allocation for the
	// follower, quantized to microwatts on the wire (empty for
	// sequential decisions). FollowerPowerMW[k][s] mirrors
	// precoding.Transmission.PowerMW.
	FollowerPowerMW [][]float64
}

func marshalFrame(t FrameType, body []byte) []byte {
	out := make([]byte, 0, headerBytes+len(body)+trailerBytes)
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint16(hdr[0:2], frameMagic)
	hdr[2] = frameVersion
	hdr[3] = byte(t)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(body)))
	out = append(out, hdr[:]...)
	out = append(out, body...)
	crc := crc32.ChecksumIEEE(out)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], crc)
	return append(out, tr[:]...)
}

// unmarshalFrame validates framing and returns (type, body).
func unmarshalFrame(data []byte) (FrameType, []byte, error) {
	if len(data) < headerBytes+trailerBytes {
		return 0, nil, fmt.Errorf("%w: short frame (%d bytes)", ErrBadFrame, len(data))
	}
	if binary.LittleEndian.Uint16(data[0:2]) != frameMagic {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if data[2] != frameVersion {
		return 0, nil, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, data[2])
	}
	bodyLen := int(binary.LittleEndian.Uint32(data[4:8]))
	if len(data) != headerBytes+bodyLen+trailerBytes {
		return 0, nil, fmt.Errorf("%w: length mismatch", ErrBadFrame)
	}
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(data[:len(data)-4]) != wantCRC {
		return 0, nil, fmt.Errorf("%w: CRC mismatch", ErrBadFrame)
	}
	return FrameType(data[3]), data[headerBytes : headerBytes+bodyLen], nil
}

// Marshal serializes the ITS INIT frame.
func (f *ITSInit) Marshal() []byte {
	var b bytes.Buffer
	b.Write(f.Leader[:])
	b.Write(f.Client[:])
	binary.Write(&b, binary.LittleEndian, f.AirtimeUS)
	if len(f.TraceCtx) > 0 {
		writeBlob(&b, f.TraceCtx)
	}
	return marshalFrame(TypeITSInit, b.Bytes())
}

// UnmarshalITSInit parses an ITS INIT frame: either the legacy 16-byte
// body or the extended form with a trailing trace-context blob.
func UnmarshalITSInit(data []byte) (*ITSInit, error) {
	t, body, err := unmarshalFrame(data)
	if err != nil {
		return nil, err
	}
	if t != TypeITSInit || len(body) < 16 {
		return nil, fmt.Errorf("%w: not an ITS INIT", ErrBadFrame)
	}
	f := &ITSInit{}
	copy(f.Leader[:], body[0:6])
	copy(f.Client[:], body[6:12])
	f.AirtimeUS = binary.LittleEndian.Uint32(body[12:16])
	if len(body) > 16 {
		r := bytes.NewReader(body[16:])
		if f.TraceCtx, err = readBlob(r); err != nil {
			return nil, err
		}
		if r.Len() != 0 {
			return nil, fmt.Errorf("%w: trailing bytes", ErrBadFrame)
		}
	}
	return f, nil
}

func writeBlob(b *bytes.Buffer, blob []byte) {
	binary.Write(b, binary.LittleEndian, uint32(len(blob)))
	b.Write(blob)
}

func readBlob(r *bytes.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, ErrBadFrame
	}
	if int(n) > r.Len() {
		return nil, ErrBadFrame
	}
	blob := make([]byte, n)
	if _, err := r.Read(blob); err != nil {
		return nil, ErrBadFrame
	}
	return blob, nil
}

// Marshal serializes the ITS REQ frame with its CSI payloads.
func (f *ITSReq) Marshal() []byte {
	var b bytes.Buffer
	b.Write(f.Leader[:])
	b.Write(f.Follower[:])
	b.Write(f.Client1[:])
	b.Write(f.Client2[:])
	binary.Write(&b, binary.LittleEndian, f.AirtimeUS)
	writeBlob(&b, f.CSIToClient1)
	writeBlob(&b, f.CSIToClient2)
	return marshalFrame(TypeITSReq, b.Bytes())
}

// UnmarshalITSReq parses an ITS REQ frame.
func UnmarshalITSReq(data []byte) (*ITSReq, error) {
	t, body, err := unmarshalFrame(data)
	if err != nil {
		return nil, err
	}
	if t != TypeITSReq || len(body) < 28 {
		return nil, fmt.Errorf("%w: not an ITS REQ", ErrBadFrame)
	}
	f := &ITSReq{}
	copy(f.Leader[:], body[0:6])
	copy(f.Follower[:], body[6:12])
	copy(f.Client1[:], body[12:18])
	copy(f.Client2[:], body[18:24])
	f.AirtimeUS = binary.LittleEndian.Uint32(body[24:28])
	r := bytes.NewReader(body[28:])
	if f.CSIToClient1, err = readBlob(r); err != nil {
		return nil, err
	}
	if f.CSIToClient2, err = readBlob(r); err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadFrame)
	}
	return f, nil
}

// Marshal serializes the ITS ACK frame.
func (f *ITSAck) Marshal() []byte {
	var b bytes.Buffer
	b.Write(f.Leader[:])
	b.Write(f.Follower[:])
	b.Write(f.Client1[:])
	b.Write(f.Client2[:])
	binary.Write(&b, binary.LittleEndian, f.AirtimeUS)
	b.WriteByte(byte(f.Decision))
	writeBlob(&b, f.FollowerPrecoder)
	// Power allocation: nSC(2) nStreams(1) then µW uint32s.
	binary.Write(&b, binary.LittleEndian, uint16(len(f.FollowerPowerMW)))
	streams := 0
	if len(f.FollowerPowerMW) > 0 {
		streams = len(f.FollowerPowerMW[0])
	}
	b.WriteByte(uint8(streams))
	for _, row := range f.FollowerPowerMW {
		for _, p := range row {
			binary.Write(&b, binary.LittleEndian, uint32(p*1000+0.5))
		}
	}
	return marshalFrame(TypeITSAck, b.Bytes())
}

// UnmarshalITSAck parses an ITS ACK frame.
func UnmarshalITSAck(data []byte) (*ITSAck, error) {
	t, body, err := unmarshalFrame(data)
	if err != nil {
		return nil, err
	}
	if t != TypeITSAck || len(body) < 29 {
		return nil, fmt.Errorf("%w: not an ITS ACK", ErrBadFrame)
	}
	f := &ITSAck{}
	copy(f.Leader[:], body[0:6])
	copy(f.Follower[:], body[6:12])
	copy(f.Client1[:], body[12:18])
	copy(f.Client2[:], body[18:24])
	f.AirtimeUS = binary.LittleEndian.Uint32(body[24:28])
	f.Decision = Decision(body[28])
	if f.Decision != DecideSequential && f.Decision != DecideConcurrent {
		return nil, fmt.Errorf("%w: unknown decision %d", ErrBadFrame, f.Decision)
	}
	r := bytes.NewReader(body[29:])
	if f.FollowerPrecoder, err = readBlob(r); err != nil {
		return nil, err
	}
	var nsc uint16
	if err := binary.Read(r, binary.LittleEndian, &nsc); err != nil {
		return nil, ErrBadFrame
	}
	streamsByte, err := r.ReadByte()
	if err != nil {
		return nil, ErrBadFrame
	}
	streams := int(streamsByte)
	if nsc > 0 && streams > 0 {
		if r.Len() != int(nsc)*streams*4 {
			return nil, fmt.Errorf("%w: power matrix length", ErrBadFrame)
		}
		f.FollowerPowerMW = make([][]float64, nsc)
		for k := range f.FollowerPowerMW {
			row := make([]float64, streams)
			for s := range row {
				var uw uint32
				binary.Read(r, binary.LittleEndian, &uw)
				row[s] = float64(uw) / 1000
			}
			f.FollowerPowerMW[k] = row
		}
	}
	return f, nil
}

// WireSize returns the serialized size of any marshaled frame, used for
// airtime accounting.
func WireSize(frame []byte) int { return len(frame) }

// FrameTypeOf peeks at a frame's type from its header without validating
// the CRC — what a receiver's filter does before committing to a full
// parse. It reports false for frames too short or with a garbled magic.
func FrameTypeOf(data []byte) (FrameType, bool) {
	if len(data) < headerBytes || binary.LittleEndian.Uint16(data[0:2]) != frameMagic {
		return 0, false
	}
	t := FrameType(data[3])
	if t < TypeITSInit || t > TypeITSAck {
		return 0, false
	}
	return t, true
}
