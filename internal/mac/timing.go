// Package mac models COPA's medium access layer (§3.1): 802.11 DCF
// timing, the ITS INIT/REQ/ACK control-frame wire formats with their
// compressed CSI payloads, the analytic MAC-overhead accounting behind the
// paper's Table 1, and an event-driven contention simulator used to study
// fairness when more than two senders share the medium (including the
// post-ITS deference window the paper proposes as future work).
package mac

import "time"

// 802.11 OFDM (2.4 GHz, 20 MHz) MAC timing constants.
const (
	// SlotTime is the short slot duration.
	SlotTime = 9 * time.Microsecond

	// SIFS is the short interframe space.
	SIFS = 10 * time.Microsecond

	// DIFS = SIFS + 2 slots.
	DIFS = SIFS + 2*SlotTime

	// PLCPPreamble approximates the 802.11n mixed-format preamble plus
	// PLCP header transmitted before any frame body.
	PLCPPreamble = 20 * time.Microsecond

	// CWMin is the initial contention window (aCWmin slots).
	CWMin = 15

	// CWMax bounds binary exponential backoff.
	CWMax = 1023

	// ControlRateBps is the base rate control frames are sent at.
	ControlRateBps = 24e6

	// TxOp is the transmit opportunity used for throughput accounting,
	// matching the paper's 4 ms.
	TxOp = 4 * time.Millisecond
)

// Standard control frame body sizes (bytes).
const (
	RTSBytes = 20
	CTSBytes = 14
	ACKBytes = 14
)

// FrameAirtime returns the on-air duration of a frame body of the given
// size at the given PHY rate, including the PLCP preamble.
func FrameAirtime(bytes int, rateBps float64) time.Duration {
	payload := time.Duration(float64(bytes*8) / rateBps * float64(time.Second))
	return PLCPPreamble + payload
}

// MeanBackoff returns the expected initial DCF backoff duration
// (CWmin/2 slots), the per-acquisition contention cost in the absence of
// collisions.
func MeanBackoff() time.Duration {
	return time.Duration(CWMin) * SlotTime / 2
}
