package mac

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"copa/internal/rng"
)

func TestTimingConstants(t *testing.T) {
	if DIFS != 28*time.Microsecond {
		t.Errorf("DIFS = %v", DIFS)
	}
	if MeanBackoff() != 67500*time.Nanosecond {
		t.Errorf("mean backoff = %v", MeanBackoff())
	}
	// A CTS at 24 Mb/s: 20 µs preamble + 14·8/24 ≈ 4.7 µs.
	at := FrameAirtime(CTSBytes, ControlRateBps)
	if at < 24*time.Microsecond || at > 26*time.Microsecond {
		t.Errorf("CTS airtime = %v", at)
	}
}

func TestITSInitRoundTrip(t *testing.T) {
	f := &ITSInit{
		Leader:    Addr{1, 2, 3, 4, 5, 6},
		Client:    Addr{7, 8, 9, 10, 11, 12},
		AirtimeUS: 4000,
	}
	data := f.Marshal()
	got, err := UnmarshalITSInit(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Leader != f.Leader || got.Client != f.Client || got.AirtimeUS != f.AirtimeUS {
		t.Errorf("round trip mismatch: %+v vs %+v", got, f)
	}
	if got.TraceCtx != nil {
		t.Errorf("trace-less INIT grew a TraceCtx: %v", got.TraceCtx)
	}
	// An empty TraceCtx must keep the legacy 16-byte body — the wire
	// format (and thus airtime accounting) is unchanged unless tracing
	// actually propagates.
	if bodyLen := len(data) - headerBytes - trailerBytes; bodyLen != 16 {
		t.Errorf("untraced INIT body = %d bytes, want legacy 16", bodyLen)
	}
}

func TestITSInitTraceCtxRoundTrip(t *testing.T) {
	tc := make([]byte, 25)
	for i := range tc {
		tc[i] = byte(i + 1)
	}
	tc[0] = 0 // version octet
	f := &ITSInit{
		Leader:    Addr{1, 2, 3, 4, 5, 6},
		Client:    Addr{7, 8, 9, 10, 11, 12},
		AirtimeUS: 4000,
		TraceCtx:  tc,
	}
	got, err := UnmarshalITSInit(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.TraceCtx, tc) {
		t.Errorf("TraceCtx round trip: %v vs %v", got.TraceCtx, tc)
	}
	if got.Leader != f.Leader || got.Client != f.Client || got.AirtimeUS != f.AirtimeUS {
		t.Error("identity fields mismatch with TraceCtx present")
	}
	// A legacy decoder's strict 16-byte check would reject the extended
	// frame, but a legacy *encoder*'s frames must parse here (covered by
	// TestITSInitRoundTrip); and a truncated blob must not.
	bad := f.Marshal()
	bad = bad[:len(bad)-6] // chop into the blob and CRC
	if _, err := UnmarshalITSInit(bad); err == nil {
		t.Error("truncated TraceCtx frame parsed")
	}
}

func TestITSReqRoundTrip(t *testing.T) {
	f := &ITSReq{
		Leader:       Addr{1, 1, 1, 1, 1, 1},
		Follower:     Addr{2, 2, 2, 2, 2, 2},
		Client1:      Addr{3, 3, 3, 3, 3, 3},
		Client2:      Addr{4, 4, 4, 4, 4, 4},
		AirtimeUS:    8000,
		CSIToClient1: []byte{0xde, 0xad, 0xbe, 0xef},
		CSIToClient2: []byte{0xca, 0xfe},
	}
	got, err := UnmarshalITSReq(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Leader != f.Leader || got.Follower != f.Follower ||
		got.Client1 != f.Client1 || got.Client2 != f.Client2 ||
		got.AirtimeUS != f.AirtimeUS {
		t.Error("identity fields mismatch")
	}
	if !bytes.Equal(got.CSIToClient1, f.CSIToClient1) || !bytes.Equal(got.CSIToClient2, f.CSIToClient2) {
		t.Error("CSI payloads mismatch")
	}
}

func TestITSAckRoundTrip(t *testing.T) {
	f := &ITSAck{
		Leader:           Addr{1, 0, 0, 0, 0, 1},
		Follower:         Addr{2, 0, 0, 0, 0, 2},
		Client1:          Addr{3, 0, 0, 0, 0, 3},
		Client2:          Addr{4, 0, 0, 0, 0, 4},
		AirtimeUS:        4000,
		Decision:         DecideConcurrent,
		FollowerPrecoder: []byte{9, 8, 7},
		FollowerPowerMW:  [][]float64{{0.5, 0.25}, {0, 1.125}},
	}
	got, err := UnmarshalITSAck(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Decision != DecideConcurrent || !bytes.Equal(got.FollowerPrecoder, f.FollowerPrecoder) {
		t.Error("decision/precoder mismatch")
	}
	if len(got.FollowerPowerMW) != 2 {
		t.Fatalf("power rows = %d", len(got.FollowerPowerMW))
	}
	for k := range f.FollowerPowerMW {
		for s := range f.FollowerPowerMW[k] {
			if math.Abs(got.FollowerPowerMW[k][s]-f.FollowerPowerMW[k][s]) > 1e-3 {
				t.Errorf("power[%d][%d] = %g want %g", k, s,
					got.FollowerPowerMW[k][s], f.FollowerPowerMW[k][s])
			}
		}
	}
}

func TestITSAckSequentialEmpty(t *testing.T) {
	f := &ITSAck{Decision: DecideSequential, AirtimeUS: 100}
	got, err := UnmarshalITSAck(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Decision != DecideSequential || len(got.FollowerPrecoder) != 0 || got.FollowerPowerMW != nil {
		t.Error("sequential ACK should carry no payloads")
	}
}

func TestFrameCorruption(t *testing.T) {
	f := &ITSInit{Leader: Addr{1}, Client: Addr{2}, AirtimeUS: 1}
	data := f.Marshal()

	// Flip a payload bit: CRC must catch it.
	bad := append([]byte(nil), data...)
	bad[headerBytes] ^= 0x01
	if _, err := UnmarshalITSInit(bad); !errors.Is(err, ErrBadFrame) {
		t.Error("bit flip not detected")
	}
	// Truncation.
	if _, err := UnmarshalITSInit(data[:len(data)-2]); !errors.Is(err, ErrBadFrame) {
		t.Error("truncation not detected")
	}
	// Wrong type.
	req := (&ITSReq{}).Marshal()
	if _, err := UnmarshalITSInit(req); !errors.Is(err, ErrBadFrame) {
		t.Error("type confusion not detected")
	}
	// Empty.
	if _, err := UnmarshalITSInit(nil); !errors.Is(err, ErrBadFrame) {
		t.Error("nil frame not detected")
	}
}

func TestQuickFrameFuzz(t *testing.T) {
	// Random byte strings must never decode successfully (the magic,
	// length and CRC gates) nor panic.
	f := func(data []byte) bool {
		if _, err := UnmarshalITSInit(data); err == nil {
			return false
		}
		if _, err := UnmarshalITSReq(data); err == nil {
			return false
		}
		if _, err := UnmarshalITSAck(data); err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTable1ShapeAndOrdering(t *testing.T) {
	m := DefaultOverheadModel()
	rows := m.Table1(4*time.Millisecond, 30*time.Millisecond, 1000*time.Millisecond)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// Concurrent always costs more than sequential; RTS/CTS more
		// than CTS-to-self (paper's Table 1 ordering).
		if r.COPAConc <= r.COPASeq {
			t.Errorf("row %d: conc %.3f <= seq %.3f", i, r.COPAConc, r.COPASeq)
		}
		if r.CSMARTS <= r.CSMACTS {
			t.Errorf("row %d: RTS %.3f <= CTS %.3f", i, r.CSMARTS, r.CSMACTS)
		}
		// COPA overheads exceed CSMA's (coordination is not free).
		if r.COPASeq <= r.CSMACTS {
			t.Errorf("row %d: COPA seq %.3f <= CSMA CTS %.3f", i, r.COPASeq, r.CSMACTS)
		}
		// Overheads decrease (weakly) as the channel grows more stable.
		if i > 0 {
			if r.COPAConc > rows[i-1].COPAConc || r.COPASeq > rows[i-1].COPASeq {
				t.Errorf("overheads not decreasing with coherence time")
			}
		}
		// CSMA does not depend on coherence time.
		if r.CSMACTS != rows[0].CSMACTS || r.CSMARTS != rows[0].CSMARTS {
			t.Error("CSMA overhead should be coherence-independent")
		}
	}
	// Magnitudes in the paper's ballpark (Table 1: 2.7–9.3%).
	r0 := rows[0]
	if r0.COPAConc < 0.05 || r0.COPAConc > 0.15 {
		t.Errorf("COPA conc @4ms = %.1f%%, want ≈9%%", r0.COPAConc*100)
	}
	if r0.CSMACTS < 0.015 || r0.CSMACTS > 0.05 {
		t.Errorf("CSMA CTS = %.1f%%, want ≈2.7%%", r0.CSMACTS*100)
	}
	last := rows[2]
	if last.COPASeq > 2*last.CSMACTS {
		t.Errorf("COPA seq @1s = %.1f%% should approach CSMA's %.1f%%",
			last.COPASeq*100, last.CSMACTS*100)
	}
}

func TestDCFTwoStationsFair(t *testing.T) {
	d := DCF{Stations: 2}
	stats := d.Run(rng.New(1), 4000)
	if math.Abs(stats.Airtime[0]-0.5) > 0.05 {
		t.Errorf("two-station share = %v", stats.Airtime)
	}
	if stats.JainIndex < 0.99 {
		t.Errorf("Jain = %g", stats.JainIndex)
	}
}

func TestDCFPairWithoutDeferenceIsUnfair(t *testing.T) {
	// A COPA pair that wins two consecutive TXOPs squeezes the third
	// station below its fair 1/3 share.
	d := DCF{Stations: 3, COPAPair: true}
	stats := d.Run(rng.New(2), 6000)
	third := stats.Airtime[2]
	if third >= 0.30 {
		t.Errorf("outsider share = %.3f; expected squeezed below fair 1/3", third)
	}
}

func TestDCFDeferenceRestoresFairness(t *testing.T) {
	base := DCF{Stations: 3, COPAPair: true}.Run(rng.New(3), 6000)
	fixed := DCF{Stations: 3, COPAPair: true, Deference: true}.Run(rng.New(3), 6000)
	if fixed.Airtime[2] <= base.Airtime[2] {
		t.Errorf("deference did not help the outsider: %.3f vs %.3f",
			fixed.Airtime[2], base.Airtime[2])
	}
	if fixed.JainIndex <= base.JainIndex {
		t.Errorf("deference did not improve Jain: %.4f vs %.4f",
			fixed.JainIndex, base.JainIndex)
	}
}

func TestDCFDeterministic(t *testing.T) {
	a := DCF{Stations: 4, COPAPair: true}.Run(rng.New(9), 1000)
	b := DCF{Stations: 4, COPAPair: true}.Run(rng.New(9), 1000)
	for i := range a.Airtime {
		if a.Airtime[i] != b.Airtime[i] {
			t.Fatal("same seed gave different results")
		}
	}
}

func BenchmarkDCF(b *testing.B) {
	d := DCF{Stations: 4, COPAPair: true, Deference: true}
	src := rng.New(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Run(src, 1000)
	}
}

func BenchmarkITSReqMarshal(b *testing.B) {
	f := &ITSReq{CSIToClient1: make([]byte, 420), CSIToClient2: make([]byte, 420)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Marshal()
	}
}
