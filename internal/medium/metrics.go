package medium

import "copa/internal/obs"

// Pre-resolved observability handles for the transport layer, mirroring
// internal/core's handle-based pattern: resolved once at package init,
// single atomic add on the per-frame path.
var (
	mFramesSent      = obs.C("copa.medium.frames_sent")
	mFramesDelivered = obs.C("copa.medium.frames_delivered")
	mFramesDropped   = obs.C("copa.medium.frames_dropped")
	mFramesCorrupted = obs.C("copa.medium.frames_corrupted")
	mFramesDuplicate = obs.C("copa.medium.frames_duplicated")
	mFramesReordered = obs.C("copa.medium.frames_reordered")
	mFramesDelayed   = obs.C("copa.medium.frames_delayed")
)
