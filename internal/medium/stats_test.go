package medium

import (
	"math"
	"testing"

	"copa/internal/rng"
)

// The statistical regression gate: a Faulty medium must realize its
// configured loss rate and Gilbert–Elliott burst-length distribution
// within tolerance at fixed seeds. These are deterministic tests — a
// failure means the loss process itself changed, not bad luck.

func realizedLoss(t *testing.T, cfg Config, seed int64, frames int) Stats {
	t.Helper()
	f := NewFaulty(NewPerfect(), cfg, rng.New(seed))
	for i := 0; i < frames; i++ {
		if err := f.Send(stA, stB, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
		// Drain so the in-memory queue stays bounded.
		f.Recv(stB, 0)
	}
	return f.Stats()
}

func TestFaultyIIDLossRate(t *testing.T) {
	const frames = 50000
	for _, tc := range []struct {
		loss float64
		seed int64
	}{
		{0.05, 1}, {0.10, 2}, {0.30, 3},
	} {
		st := realizedLoss(t, Config{Loss: tc.loss}, tc.seed, frames)
		got := float64(st.Dropped) / float64(st.Sent)
		// ±3σ for a Bernoulli(p) mean over `frames` trials.
		tol := 3 * math.Sqrt(tc.loss*(1-tc.loss)/frames)
		if math.Abs(got-tc.loss) > tol {
			t.Errorf("loss %.2f seed %d: realized %.4f (tol %.4f)", tc.loss, tc.seed, got, tol)
		}
		// i.i.d. loss: mean burst length is 1/(1−p).
		if st.LossBursts > 0 {
			meanBurst := float64(st.Dropped) / float64(st.LossBursts)
			want := 1 / (1 - tc.loss)
			if math.Abs(meanBurst-want) > 0.15*want {
				t.Errorf("loss %.2f: i.i.d. mean burst %.3f, want ≈%.3f", tc.loss, meanBurst, want)
			}
		}
	}
}

func TestFaultyGilbertElliottLossAndBursts(t *testing.T) {
	const frames = 60000
	for _, tc := range []struct {
		loss, burst float64
		seed        int64
	}{
		{0.10, 4, 11}, {0.20, 8, 12}, {0.30, 3, 13},
	} {
		st := realizedLoss(t, Config{Loss: tc.loss, MeanBurst: tc.burst}, tc.seed, frames)
		got := float64(st.Dropped) / float64(st.Sent)
		// Bursty losses decorrelate slowly: widen the i.i.d. 3σ band by
		// the burst length (an effective-sample-size argument).
		tol := 3 * math.Sqrt(tc.loss*(1-tc.loss)/frames*2*tc.burst)
		if math.Abs(got-tc.loss) > tol {
			t.Errorf("GE loss %.2f burst %.0f seed %d: realized %.4f (tol %.4f)",
				tc.loss, tc.burst, tc.seed, got, tol)
		}
		if st.LossBursts == 0 {
			t.Fatalf("GE loss %.2f: no bursts recorded", tc.loss)
		}
		meanBurst := float64(st.Dropped) / float64(st.LossBursts)
		if math.Abs(meanBurst-tc.burst) > 0.15*tc.burst {
			t.Errorf("GE burst %.0f seed %d: realized mean burst %.2f", tc.burst, tc.seed, meanBurst)
		}
	}
}

// Gilbert–Elliott burst lengths are geometric with mean 1/r: check the
// distribution's shape, not just its mean, by comparing the empirical
// burst-length survival function at a few points.
func TestFaultyGilbertElliottBurstDistribution(t *testing.T) {
	const frames = 80000
	cfg := Config{Loss: 0.2, MeanBurst: 5}
	f := NewFaulty(NewPerfect(), cfg, rng.New(21))
	var bursts []int
	run := 0
	for i := 0; i < frames; i++ {
		f.Send(stA, stB, []byte{1})
		if _, err := f.Recv(stB, 0); err != nil {
			run++
			continue
		}
		if run > 0 {
			bursts = append(bursts, run)
			run = 0
		}
	}
	if len(bursts) < 500 {
		t.Fatalf("only %d bursts observed", len(bursts))
	}
	// P(burst ≥ k) = (1 − r)^(k−1) with r = 1/MeanBurst = 0.2.
	r := 1 / cfg.MeanBurst
	for _, k := range []int{2, 5, 10} {
		cnt := 0
		for _, b := range bursts {
			if b >= k {
				cnt++
			}
		}
		got := float64(cnt) / float64(len(bursts))
		want := math.Pow(1-r, float64(k-1))
		if math.Abs(got-want) > 0.05 {
			t.Errorf("P(burst ≥ %d) = %.3f, want ≈%.3f", k, got, want)
		}
	}
}
