package medium

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"copa/internal/mac"
	"copa/internal/rng"
)

var (
	stA = mac.Addr{0x02, 0, 0, 0, 0, 1}
	stB = mac.Addr{0x02, 0, 0, 0, 0, 2}
)

func TestPerfectDeliversInOrder(t *testing.T) {
	m := NewPerfect()
	for i := byte(0); i < 3; i++ {
		if err := m.Send(stA, stB, []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 3; i++ {
		got, err := m.Recv(stB, 0)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !bytes.Equal(got, []byte{i}) {
			t.Fatalf("recv %d: got %v", i, got)
		}
	}
	if _, err := m.Recv(stB, time.Second); !errors.Is(err, ErrTimeout) {
		t.Fatalf("empty queue: err = %v", err)
	}
}

func TestPerfectIsolatesDestinations(t *testing.T) {
	m := NewPerfect()
	m.Send(stA, stB, []byte("forB"))
	if _, err := m.Recv(stA, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("frame for B delivered to A: %v", err)
	}
	if got, err := m.Recv(stB, 0); err != nil || string(got) != "forB" {
		t.Fatalf("recv B: %q %v", got, err)
	}
}

func TestPerfectVirtualDelay(t *testing.T) {
	m := NewPerfect()
	m.sendDelayed(stA, stB, []byte("late"), 5*time.Millisecond)
	// A 2 ms wait is too short, but it advances the virtual clock…
	if _, err := m.Recv(stB, 2*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("early recv: %v", err)
	}
	// …so the remaining delay is 3 ms and a 4 ms wait succeeds.
	if got, err := m.Recv(stB, 4*time.Millisecond); err != nil || string(got) != "late" {
		t.Fatalf("late recv: %q %v", got, err)
	}
}

func TestPerfectClose(t *testing.T) {
	m := NewPerfect()
	m.Send(stA, stB, []byte("x"))
	m.Close()
	if err := m.Send(stA, stB, []byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if _, err := m.Recv(stB, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
}

func TestFaultyZeroConfigIsTransparent(t *testing.T) {
	f := NewFaulty(NewPerfect(), Config{}, rng.New(1))
	frame := []byte{1, 2, 3}
	for i := 0; i < 100; i++ {
		if err := f.Send(stA, stB, frame); err != nil {
			t.Fatal(err)
		}
		got, err := f.Recv(stB, 0)
		if err != nil || !bytes.Equal(got, frame) {
			t.Fatalf("round %d: %v %v", i, got, err)
		}
	}
	if s := f.Stats(); s.Dropped+s.Corrupted+s.Duplicated+s.Reordered != 0 {
		t.Fatalf("impairments injected with zero config: %+v", s)
	}
}

func TestFaultyTotalLoss(t *testing.T) {
	f := NewFaulty(NewPerfect(), Config{Loss: 1}, rng.New(1))
	for i := 0; i < 10; i++ {
		f.Send(stA, stB, []byte{byte(i)})
	}
	if _, err := f.Recv(stB, time.Second); !errors.Is(err, ErrTimeout) {
		t.Fatalf("frame survived 100%% loss: %v", err)
	}
	if s := f.Stats(); s.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", s.Dropped)
	}
}

func TestFaultyCorruptionKeepsLengthAndBreaksCRC(t *testing.T) {
	f := NewFaulty(NewPerfect(), Config{Corrupt: 1}, rng.New(7))
	orig := (&mac.ITSInit{Leader: stA, Client: stB, AirtimeUS: 4000}).Marshal()
	f.Send(stA, stB, orig)
	got, err := f.Recv(stB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("corruption changed length: %d vs %d", len(got), len(orig))
	}
	if bytes.Equal(got, orig) {
		t.Fatal("frame not corrupted despite Corrupt=1")
	}
	if _, err := mac.UnmarshalITSInit(got); err == nil {
		t.Fatal("CRC accepted a corrupted frame")
	}
}

func TestFaultyDuplication(t *testing.T) {
	f := NewFaulty(NewPerfect(), Config{Duplicate: 1}, rng.New(3))
	f.Send(stA, stB, []byte("dup"))
	for i := 0; i < 2; i++ {
		if got, err := f.Recv(stB, 0); err != nil || string(got) != "dup" {
			t.Fatalf("copy %d: %q %v", i, got, err)
		}
	}
}

func TestFaultyReordering(t *testing.T) {
	f := NewFaulty(NewPerfect(), Config{Reorder: 1}, rng.New(5))
	f.Send(stA, stB, []byte("first")) // held back
	f.Send(stA, stB, []byte("second"))
	got1, err1 := f.Recv(stB, 0)
	got2, err2 := f.Recv(stB, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if string(got1) != "second" || string(got2) != "first" {
		t.Fatalf("order = %q, %q", got1, got2)
	}
	if s := f.Stats(); s.Reordered != 1 {
		t.Fatalf("reordered = %d", s.Reordered)
	}
}

func TestFaultyDeterminism(t *testing.T) {
	run := func() Stats {
		f := NewFaulty(NewPerfect(), Config{Loss: 0.3, Corrupt: 0.2, Duplicate: 0.1, Reorder: 0.1}, rng.New(42))
		for i := 0; i < 500; i++ {
			f.Send(stA, stB, []byte{byte(i), byte(i >> 8)})
		}
		return f.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different impairments: %+v vs %+v", a, b)
	}
	if a.Dropped == 0 || a.Corrupted == 0 {
		t.Fatalf("impairments never fired: %+v", a)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	ma, err := NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	mb, err := NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()
	if err := ma.AddPeer(stB, mb.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := mb.AddPeer(stA, ma.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	frame := (&mac.ITSInit{Leader: stA, Client: stB, AirtimeUS: 4000}).Marshal()
	if err := ma.Send(stA, stB, frame); err != nil {
		t.Fatal(err)
	}
	got, err := mb.Recv(stB, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("UDP frame corrupted in transit")
	}
	// Reply path.
	if err := mb.Send(stB, stA, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if got, err := ma.Recv(stA, 2*time.Second); err != nil || string(got) != "ok" {
		t.Fatalf("reply: %q %v", got, err)
	}
}

func TestUDPRecvTimeoutAndFiltering(t *testing.T) {
	ma, err := NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	if _, err := ma.Recv(stA, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("timeout: %v", err)
	}
	if err := ma.Send(stA, mac.Addr{9, 9, 9, 9, 9, 9}, []byte("x")); err == nil {
		t.Fatal("send to unknown peer should fail")
	}
}

func TestFaultyOverUDPDropsEverything(t *testing.T) {
	inner, err := NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	inner.AddPeer(stA, inner.LocalAddr())
	f := NewFaulty(inner, Config{Loss: 1}, rng.New(1))
	if err := f.Send(stB, stA, []byte("gone")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Recv(stA, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("frame survived forced loss over UDP: %v", err)
	}
}
