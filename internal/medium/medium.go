// Package medium models the lossy control-plane transport the ITS
// exchange (§3, Fig. 5) really runs over. The simulator's exchange used
// to be perfectly-reliable function calls; this package puts a real
// medium between the APs so the protocol's failure behaviour — the part
// Table 1's overhead model and §3.1's contention study exist to
// quantify — is actually exercised.
//
// Three implementations share the Medium interface:
//
//   - Perfect: an in-memory queue that delivers every frame intact, in
//     order, with zero delay — bit-for-bit the pre-medium behaviour, so
//     all existing figures are unchanged.
//   - Faulty: a decorator injecting configurable impairments (i.i.d. and
//     Gilbert–Elliott bursty loss, CRC-corrupting bit flips, delay
//     jitter, duplication, reordering) into any inner medium, driven by
//     internal/rng so every run is reproducible.
//   - UDP: real net sockets, one datagram per ITS frame, for running
//     COPA APs as separate processes (cmd/copad).
//
// Timeout semantics differ by clock domain: simulated media (Perfect,
// and Faulty over Perfect) treat Recv timeouts as virtual time — they
// serve queued traffic or fail immediately, never sleeping — while UDP
// blocks in real time. The exchange engine in internal/core works with
// both.
package medium

import (
	"errors"
	"sync"
	"time"

	"copa/internal/mac"
)

// ErrTimeout is returned by Recv when no frame for the destination
// arrives within the timeout.
var ErrTimeout = errors.New("medium: receive timeout")

// ErrClosed is returned once a medium has been shut down.
var ErrClosed = errors.New("medium: closed")

// Medium delivers marshaled ITS control frames between stations
// identified by their MAC addresses.
type Medium interface {
	// Send transmits frame from src toward dst. A nil error means the
	// frame was handed to the medium, not that it will arrive: lossy
	// media drop silently, exactly like the air.
	Send(src, dst mac.Addr, frame []byte) error
	// Recv returns the next frame addressed to dst, waiting up to
	// timeout. Simulated media interpret the timeout as virtual time and
	// return immediately either way; network media block for real.
	Recv(dst mac.Addr, timeout time.Duration) ([]byte, error)
	// Close releases the medium's resources.
	Close() error
}

// delayedSender is implemented by simulated media that can queue a frame
// with a virtual arrival delay; Faulty uses it for jitter injection.
type delayedSender interface {
	sendDelayed(src, dst mac.Addr, frame []byte, delay time.Duration) error
}

// pending is one queued frame with its remaining virtual arrival delay.
type pending struct {
	frame []byte
	delay time.Duration
}

// Perfect is the ideal in-memory medium: lossless, ordered, instant
// (unless a decorator injects delay). It is safe for concurrent use.
type Perfect struct {
	mu     sync.Mutex
	queues map[mac.Addr][]pending
	closed bool
}

// NewPerfect returns an empty ideal medium.
func NewPerfect() *Perfect {
	return &Perfect{queues: make(map[mac.Addr][]pending)}
}

// Send queues the frame for dst with zero delay.
func (m *Perfect) Send(src, dst mac.Addr, frame []byte) error {
	return m.sendDelayed(src, dst, frame, 0)
}

func (m *Perfect) sendDelayed(_, dst mac.Addr, frame []byte, delay time.Duration) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	mFramesSent.Inc()
	m.queues[dst] = append(m.queues[dst], pending{frame: append([]byte(nil), frame...), delay: delay})
	return nil
}

// Recv pops the oldest frame queued for dst whose virtual arrival delay
// fits within timeout. Waiting advances dst's virtual clock: a timeout
// shortens the remaining delay of everything still queued, so a jittered
// frame that misses one Recv can arrive at the next.
func (m *Perfect) Recv(dst mac.Addr, timeout time.Duration) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	q := m.queues[dst]
	if len(q) == 0 {
		return nil, ErrTimeout
	}
	head := q[0]
	if head.delay > timeout {
		// Nothing lands inside this window: the wait itself consumes
		// virtual time for every frame in flight toward dst.
		for i := range q {
			q[i].delay -= timeout
		}
		return nil, ErrTimeout
	}
	m.queues[dst] = q[1:]
	for i := range m.queues[dst] {
		if m.queues[dst][i].delay > head.delay {
			m.queues[dst][i].delay -= head.delay
		} else {
			m.queues[dst][i].delay = 0
		}
	}
	mFramesDelivered.Inc()
	return head.frame, nil
}

// Pending reports how many frames are queued for dst (test hook).
func (m *Perfect) Pending(dst mac.Addr) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queues[dst])
}

// Close empties the medium; further Send/Recv fail with ErrClosed.
func (m *Perfect) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.queues = make(map[mac.Addr][]pending)
	return nil
}
