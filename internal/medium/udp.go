package medium

import (
	"fmt"
	"net"
	"sync"
	"time"

	"copa/internal/mac"
)

// udpHeaderBytes prefixes every datagram: destination then source MAC
// address, so one socket can carry traffic for any station and Recv can
// filter frames not addressed to the caller.
const udpHeaderBytes = 12

// maxDatagram bounds a received ITS frame; REQ frames carry two
// compressed CSI payloads but stay far below this.
const maxDatagram = 64 << 10

// UDP is a Medium over real sockets: one datagram per ITS frame, one
// socket per process. Unlike the simulated media its Recv blocks in real
// time, and loss is whatever the network provides (wrap it in a Faulty
// to force more).
type UDP struct {
	conn *net.UDPConn

	mu    sync.Mutex
	peers map[mac.Addr]*net.UDPAddr
}

// NewUDP opens a socket on listen ("127.0.0.1:0" picks a free port).
func NewUDP(listen string) (*UDP, error) {
	la, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("medium: resolve %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("medium: listen %q: %w", listen, err)
	}
	return &UDP{conn: conn, peers: make(map[mac.Addr]*net.UDPAddr)}, nil
}

// LocalAddr returns the bound host:port.
func (u *UDP) LocalAddr() string { return u.conn.LocalAddr().String() }

// AddPeer maps a station address to the host:port its process listens on.
func (u *UDP) AddPeer(addr mac.Addr, hostport string) error {
	ua, err := net.ResolveUDPAddr("udp", hostport)
	if err != nil {
		return fmt.Errorf("medium: resolve peer %q: %w", hostport, err)
	}
	u.mu.Lock()
	u.peers[addr] = ua
	u.mu.Unlock()
	return nil
}

// Send transmits one datagram [dst | src | frame] to dst's socket.
func (u *UDP) Send(src, dst mac.Addr, frame []byte) error {
	u.mu.Lock()
	peer, ok := u.peers[dst]
	u.mu.Unlock()
	if !ok {
		return fmt.Errorf("medium: no route to %v", dst)
	}
	buf := make([]byte, 0, udpHeaderBytes+len(frame))
	buf = append(buf, dst[:]...)
	buf = append(buf, src[:]...)
	buf = append(buf, frame...)
	if _, err := u.conn.WriteToUDP(buf, peer); err != nil {
		return err
	}
	mFramesSent.Inc()
	return nil
}

// Recv blocks up to timeout for a datagram addressed to dst, discarding
// traffic for other stations and truncated headers.
func (u *UDP) Recv(dst mac.Addr, timeout time.Duration) ([]byte, error) {
	deadline := time.Now().Add(timeout)
	buf := make([]byte, maxDatagram)
	for {
		if err := u.conn.SetReadDeadline(deadline); err != nil {
			return nil, err
		}
		n, _, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, ErrTimeout
			}
			return nil, err
		}
		if n < udpHeaderBytes {
			continue
		}
		var to mac.Addr
		copy(to[:], buf[:6])
		if to != dst {
			continue
		}
		mFramesDelivered.Inc()
		return append([]byte(nil), buf[udpHeaderBytes:n]...), nil
	}
}

// Close shuts the socket down; a blocked Recv returns with an error.
func (u *UDP) Close() error { return u.conn.Close() }
