package medium

import (
	"sync"
	"time"

	"copa/internal/mac"
	"copa/internal/rng"
)

// Config parameterizes the impairments a Faulty medium injects. The zero
// value injects nothing (Faulty degenerates to its inner medium).
type Config struct {
	// Loss is the stationary probability a frame is dropped in transit.
	Loss float64
	// MeanBurst is the mean length of loss bursts in frames. Values ≤ 1
	// give i.i.d. (Bernoulli) loss; larger values switch to a
	// Gilbert–Elliott two-state channel whose bad state drops every
	// frame, tuned so the stationary loss rate stays Loss and the mean
	// sojourn in the bad state is MeanBurst frames.
	MeanBurst float64
	// Corrupt is the probability a delivered frame has 1–4 of its bits
	// flipped. The frame still arrives; the mac-layer CRC rejects it.
	Corrupt float64
	// Duplicate is the probability a delivered frame arrives twice.
	Duplicate float64
	// Reorder is the probability a frame is held back and delivered
	// after the next frame on the same src→dst link.
	Reorder float64
	// JitterMax adds a uniform [0, JitterMax] virtual delivery delay on
	// media that support it (simulated queues); network media ignore it.
	JitterMax time.Duration
}

// Stats counts what a Faulty medium actually did — the ground truth the
// statistical regression tests compare against the configuration.
type Stats struct {
	Sent       uint64 // frames offered to Send
	Dropped    uint64 // frames lost in transit
	Corrupted  uint64 // frames delivered with flipped bits
	Duplicated uint64 // extra copies delivered
	Reordered  uint64 // frames delivered behind a later frame
	Delayed    uint64 // frames delivered with extra jitter delay
	// LossBursts is the number of maximal runs of consecutive drops;
	// Dropped/LossBursts is the realized mean burst length.
	LossBursts uint64
}

// Faulty wraps any Medium and injects seeded, reproducible impairments
// on the Send path. It is safe for concurrent use; draws are serialized
// so a fixed seed and send sequence give a fixed impairment sequence.
type Faulty struct {
	inner Medium
	cfg   Config

	mu    sync.Mutex
	src   *rng.Source
	bad   bool // Gilbert–Elliott state: true = bursty-loss state
	held  map[[12]byte][]byte
	stats Stats
	inRun bool // currently inside a drop burst
}

// NewFaulty wraps inner with the given impairments, drawing all
// randomness from src.
func NewFaulty(inner Medium, cfg Config, src *rng.Source) *Faulty {
	return &Faulty{inner: inner, cfg: cfg, src: src, held: make(map[[12]byte][]byte)}
}

// Stats returns a snapshot of the impairments injected so far.
func (f *Faulty) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func linkKey(src, dst mac.Addr) [12]byte {
	var k [12]byte
	copy(k[:6], src[:])
	copy(k[6:], dst[:])
	return k
}

// dropNow advances the loss process one frame and reports whether this
// frame is lost. Gilbert–Elliott: the current state decides the frame's
// fate, then the state transitions; with r = 1/MeanBurst and
// p = r·Loss/(1−Loss) the stationary bad-state probability is Loss and
// bad-state sojourns average MeanBurst frames.
func (f *Faulty) dropNow() bool {
	loss := f.cfg.Loss
	if loss <= 0 {
		return false
	}
	if loss >= 1 {
		return true
	}
	if f.cfg.MeanBurst <= 1 {
		return f.src.Bool(loss)
	}
	r := 1 / f.cfg.MeanBurst
	p := r * loss / (1 - loss)
	drop := f.bad
	if f.bad {
		if f.src.Bool(r) {
			f.bad = false
		}
	} else if f.src.Bool(p) {
		f.bad = true
	}
	return drop
}

// corruptFrame flips 1–4 random bits in a copy of the frame, leaving its
// length intact so only the CRC betrays it.
func (f *Faulty) corruptFrame(frame []byte) []byte {
	out := append([]byte(nil), frame...)
	flips := 1 + f.src.Intn(4)
	for i := 0; i < flips; i++ {
		bit := f.src.Intn(len(out) * 8)
		out[bit/8] ^= 1 << (bit % 8)
	}
	return out
}

// Send applies loss, corruption, duplication, reordering and jitter in
// that order, then forwards the surviving copies to the inner medium.
func (f *Faulty) Send(src, dst mac.Addr, frame []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Sent++
	if len(frame) == 0 {
		return f.forward(src, dst, frame, 0)
	}
	if f.dropNow() {
		f.stats.Dropped++
		if !f.inRun {
			f.inRun = true
			f.stats.LossBursts++
		}
		mFramesDropped.Inc()
		return nil
	}
	f.inRun = false

	out := frame
	if f.cfg.Corrupt > 0 && f.src.Bool(f.cfg.Corrupt) {
		out = f.corruptFrame(out)
		f.stats.Corrupted++
		mFramesCorrupted.Inc()
	}
	var delay time.Duration
	if f.cfg.JitterMax > 0 {
		if delay = time.Duration(f.src.Float64() * float64(f.cfg.JitterMax)); delay > 0 {
			f.stats.Delayed++
			mFramesDelayed.Inc()
		}
	}

	// Reordering: hold this frame back; it is released behind the next
	// frame on the same link (or flushed by Recv-side drains implicitly
	// when the next Send happens).
	key := linkKey(src, dst)
	if prev, ok := f.held[key]; ok {
		delete(f.held, key)
		if err := f.forward(src, dst, out, delay); err != nil {
			return err
		}
		f.stats.Reordered++
		mFramesReordered.Inc()
		return f.forward(src, dst, prev, 0)
	}
	if f.cfg.Reorder > 0 && f.src.Bool(f.cfg.Reorder) {
		f.held[key] = append([]byte(nil), out...)
		return nil
	}

	if err := f.forward(src, dst, out, delay); err != nil {
		return err
	}
	if f.cfg.Duplicate > 0 && f.src.Bool(f.cfg.Duplicate) {
		f.stats.Duplicated++
		mFramesDuplicate.Inc()
		return f.forward(src, dst, out, delay)
	}
	return nil
}

func (f *Faulty) forward(src, dst mac.Addr, frame []byte, delay time.Duration) error {
	if ds, ok := f.inner.(delayedSender); ok && delay > 0 {
		return ds.sendDelayed(src, dst, frame, delay)
	}
	return f.inner.Send(src, dst, frame)
}

// Recv delegates to the inner medium.
func (f *Faulty) Recv(dst mac.Addr, timeout time.Duration) ([]byte, error) {
	return f.inner.Recv(dst, timeout)
}

// Close flushes any held frames and closes the inner medium.
func (f *Faulty) Close() error {
	f.mu.Lock()
	f.held = make(map[[12]byte][]byte)
	f.mu.Unlock()
	return f.inner.Close()
}
