package copa

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// These tests exercise the public facade end to end: topology → CSI →
// precoding → allocation → strategy choice → protocol exchange, the way a
// downstream user would drive the library.

func TestFacadeTopologyGeneration(t *testing.T) {
	dep := NewDeployment(1, Scenario4x2)
	if dep.Scenario.Name != "4x2" {
		t.Fatalf("scenario %q", dep.Scenario.Name)
	}
	deps := GenerateTestbed(2, Scenario1x1, 5)
	if len(deps) != 5 {
		t.Fatalf("%d deployments", len(deps))
	}
	for _, d := range deps {
		if d.H[0][0] == nil || d.H[1][0] == nil {
			t.Fatal("missing links")
		}
	}
}

func TestFacadeEvaluateAndSelect(t *testing.T) {
	dep := NewDeployment(3, Scenario4x2)
	ev := NewEvaluator(dep, DefaultImpairments(), 7)
	outs, err := ev.EvaluateAll()
	if err != nil {
		t.Fatal(err)
	}
	max := Select(ModeMax, outs)
	fair := Select(ModeFair, outs)
	if max.PredictedAggregate() < fair.PredictedAggregate() {
		t.Error("max mode predicted below fair mode")
	}
	if _, ok := outs[KindCSMA]; !ok {
		t.Error("CSMA missing")
	}
}

func TestFacadeProtocolExchange(t *testing.T) {
	dep := NewDeployment(4, Scenario4x2)
	pair := NewPair(dep, DefaultImpairments(), 30*time.Millisecond, ModeFair, 9)
	pair.MeasureCSI()
	s, err := pair.RunExchange(4000)
	if err != nil {
		t.Fatal(err)
	}
	tput := pair.MeasuredThroughputs(s)
	if tput[0]+tput[1] <= 0 {
		t.Error("no throughput from negotiated transmissions")
	}
}

func TestFacadePrecodingAndAllocators(t *testing.T) {
	dep := NewDeployment(5, Scenario4x2)
	imp := PerfectHardware()
	bf, err := Beamforming(dep.H[0][0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Streams != 2 {
		t.Error("beamformer streams")
	}
	if _, err := Nulling(dep.H[0][0], dep.H[0][1], 2); err != nil {
		t.Fatalf("4x2 nulling should be feasible: %v", err)
	}
	_ = imp

	coef := make([]float64, 52)
	for i := range coef {
		coef[i] = math.Pow(10, float64(15+i%12)/10)
	}
	for _, alloc := range []Allocation{
		EquiSNR(coef, 31.6),
		Waterfill(coef, 31.6),
		MercuryBest(coef, 31.6),
	} {
		var sum float64
		for _, p := range alloc.PowerMW {
			sum += p
		}
		if sum > 31.6*1.05 {
			t.Errorf("allocator overspent: %g", sum)
		}
	}
}

func TestFacadeCSICodec(t *testing.T) {
	dep := NewDeployment(6, Scenario4x2)
	blob, err := EncodeCSI(dep.H[0][0])
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeCSI(blob)
	if err != nil {
		t.Fatal(err)
	}
	if rec.NRx() != 2 || rec.NTx() != 4 {
		t.Error("codec shape mismatch")
	}
}

func TestFacadeOverheadAndDCF(t *testing.T) {
	m := DefaultOverheadModel()
	rows := m.Table1(4*time.Millisecond, time.Second)
	if len(rows) != 2 || rows[0].COPAConc <= rows[1].COPAConc {
		t.Error("overhead table wrong")
	}
	d := DCF{Stations: 3, COPAPair: true}
	stats := d.Run(NewRand(1), 500)
	if stats.TXOPs != 500 {
		t.Error("DCF txop count")
	}
}

func TestFacadeServer(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.Workers = 2
	srv := NewServer(cfg)
	defer srv.Close()

	req := AllocateRequest{
		Scenario:    Scenario1x1,
		Seed:        5,
		Mode:        ModeMax,
		Impairments: DefaultImpairments(),
	}
	res, cached, err := srv.Allocate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cached || res.Selected.Aggregate() <= 0 {
		t.Fatalf("first allocate: cached=%v aggregate=%g", cached, res.Selected.Aggregate())
	}
	if _, cached, err = srv.Allocate(context.Background(), req); err != nil || !cached {
		t.Fatalf("repeat allocate: cached=%v err=%v", cached, err)
	}
	m := Metrics()
	if m.Counters["copa.serve.requests"] == 0 || m.Counters["copa.serve.cache_hits"] == 0 {
		t.Error("serve metrics not visible through copa.Metrics()")
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, _, err := srv.Allocate(context.Background(), req); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-shutdown err = %v, want ErrServerClosed", err)
	}
}

func TestFacadeExperimentHarness(t *testing.T) {
	cfg := DefaultExperimentConfig(1)
	cfg.Topologies = 3
	cfg.SkipCOPAPlus = true
	res, err := RunScenario(context.Background(), Scenario4x2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := Headlines(res)
	if hs.NullLosesToCSMA < 0 || hs.NullLosesToCSMA > 1 {
		t.Error("headline fraction out of range")
	}
	if f := RunFigure2(1); len(f.PowerDBm[0]) == 0 {
		t.Error("figure 2 empty")
	}
	if rows := Table1(); len(rows) != 3 {
		t.Error("table 1 rows")
	}
}

func TestFacadeClusterAndSchedule(t *testing.T) {
	dep, err := NewMultiDeployment(8, Scenario4x2, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(dep, DefaultImpairments(), 30*time.Millisecond, ModeFair, 9)
	stats, err := c.RunRounds(3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 3 {
		t.Errorf("rounds %d", stats.Rounds)
	}

	pd := NewDeployment(10, Scenario4x2)
	pair := NewPair(pd, DefaultImpairments(), 30*time.Millisecond, ModeMax, 11)
	res, err := pair.RunSchedule(ScheduleConfig{
		Duration:        40 * time.Millisecond,
		RefreshInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TXOPs == 0 || res.Aggregate() <= 0 {
		t.Error("schedule produced nothing")
	}
}

func TestFacadeRandDeterminism(t *testing.T) {
	a, b := NewRand(5), NewRand(5)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("NewRand not deterministic")
		}
	}
}

func TestFacadeScenarioConstants(t *testing.T) {
	if Scenario1x1.APAntennas != 1 || Scenario4x2.APAntennas != 4 || Scenario3x2.APAntennas != 3 {
		t.Error("scenario constants wrong")
	}
	if KindCSMA.String() != "CSMA" || ModeFair.String() != "fair" {
		t.Error("string methods not reachable through facade")
	}
}
