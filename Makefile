# Development targets for the COPA reproduction. Tier-1 CI is
# `make build test`; `make race vet` is the extended gate this repo's
# observability layer is verified under.

GO ?= go
FUZZTIME ?= 30s
# Canonical perf-gate subset and sampling (see cmd/copabench). Fixed -Nx
# benchtime keeps allocs/op deterministic run to run.
BENCH_PATTERN ?= EquiSNR|EvaluateAll|EigHermitianBatch|Figure9|ServeAllocate|CampaignUnit|SpanOverhead|OpenMetricsExposition|FleetMergeShard|DriftStep|IncrementalRealloc|ColdRealloc|RouterCachedHit|WireBinaryRoundTrip
BENCH_COUNT ?= 3
BENCH_TIME ?= 5x

# Pinned static-analysis tool versions (see `check`). Installed once into
# .tools/bin, which CI caches alongside the Go build cache.
TOOLS_BIN := $(CURDIR)/.tools/bin
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test race vet staticcheck govulncheck check kernel-equiv bench bench-obs bench-json bench-check bench-baseline fuzz serve loadtest campaign campaign-smoke fleet-smoke drift-smoke router-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the conformance gate: vet, the pinned static analyzers, and
# the repo lints (metric naming convention over the full registry).
check: vet staticcheck govulncheck
	$(GO) test -run 'TestMetricNameLint' .

# race includes the obs registry stress test (internal/obs/stress_test.go).
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# staticcheck/govulncheck run the pinned tool versions from .tools/bin,
# installing them there on first use (CI restores the directory from the
# module/build cache, so the install is a one-time cost per version
# bump). Environments that cannot reach the module proxy — offline dev
# containers — skip the step with a notice instead of failing `check`;
# CI always has network, so the gate is never silently skipped there.
staticcheck:
	@if [ ! -x $(TOOLS_BIN)/staticcheck ]; then \
		GOBIN=$(TOOLS_BIN) $(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) \
		|| { echo "staticcheck: pinned install unavailable (offline?); skipping"; exit 0; }; \
	fi; \
	$(TOOLS_BIN)/staticcheck ./...

govulncheck:
	@if [ ! -x $(TOOLS_BIN)/govulncheck ]; then \
		GOBIN=$(TOOLS_BIN) $(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) \
		|| { echo "govulncheck: pinned install unavailable (offline?); skipping"; exit 0; }; \
	fi; \
	$(TOOLS_BIN)/govulncheck ./...

# kernel-equiv is the CI kernel-equivalence gate (DESIGN §13): the
# batched closed-form/unrolled eigensolver and Gram-eig SVD kernels vs
# the generic Jacobi reference (internal/linalg property suites), the
# batched precoding builders vs their scalar counterparts within
# kernelEquivTol (internal/precoding), and the pinned golden outcome
# bits (internal/strategy) — all under the race detector. CI runs it
# twice, with GOAMD64=v1 (bit-exact goldens) and v3 (FMA contraction,
# tolerance fallback).
kernel-equiv:
	$(GO) test -race ./internal/linalg ./internal/precoding ./internal/strategy

# bench regenerates every paper figure/table and times the pipeline.
bench:
	$(GO) test -bench=. -benchmem ./...

# bench-obs compares the instrumented hot path against obs.Disabled()
# (the Instrumented/Disabled benchmark pairs in obs_bench_test.go).
bench-obs:
	$(GO) test -run XXX -bench '(EquiSNR|EvaluateAll)(Instrumented|Disabled)' -benchmem -count=$(BENCH_COUNT) .

# bench-json runs the canonical benchmark subset and writes BENCH.json
# (machine-readable ns/op, B/op, allocs/op + host metadata).
bench-json:
	$(GO) run ./cmd/copabench -bench '$(BENCH_PATTERN)' -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) -out BENCH.json

# bench-check is the CI perf gate: rerun the subset and fail on any
# allocs/op increase (exact) or B/op increase beyond 10% vs the
# checked-in baseline. Time is advisory only.
bench-check:
	$(GO) run ./cmd/copabench -bench '$(BENCH_PATTERN)' -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) -out BENCH.json -check -baseline BENCH_baseline.json

# bench-baseline refreshes the checked-in baseline after an intentional
# perf change; commit the result.
bench-baseline:
	$(GO) run ./cmd/copabench -bench '$(BENCH_PATTERN)' -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) -out BENCH_baseline.json

# drift-smoke proves the mobility subsystem's core guarantees under the
# race detector — at speed 0 the controller provably never re-negotiates
# and matches the static path byte for byte, identically-seeded mobile
# runs agree on every statistic, and the incremental re-solve stays both
# within tolerance of and >=3x cheaper than the from-scratch solve —
# then closes the loop with a real copacampaign -mobility sweep.
drift-smoke:
	$(GO) test -race -run 'TestControllerSpeedZeroNeverRenegotiates|TestControllerDeterministicAcrossRuns|TestIncrementalTracksFromScratch|TestControllerChurnForcesFullExchange' -v ./internal/drift
	$(GO) test -race -run 'TestIncrementalReallocSpeedup' -v .
	$(GO) run ./cmd/copacampaign -mobility -topologies 2 -duration 60ms -drift-thresholds 1 -q

# fuzz campaigns the wire-format parsers (go test accepts one -fuzz
# target per invocation, hence the sequence). FUZZTIME=2m make fuzz for
# a longer run.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzITSInitParse$$' -fuzztime $(FUZZTIME) ./internal/mac
	$(GO) test -run '^$$' -fuzz '^FuzzITSReqParse$$' -fuzztime $(FUZZTIME) ./internal/mac
	$(GO) test -run '^$$' -fuzz '^FuzzITSAckParse$$' -fuzztime $(FUZZTIME) ./internal/mac
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeMatrices$$' -fuzztime $(FUZZTIME) ./internal/csi
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeDelta$$' -fuzztime $(FUZZTIME) ./internal/csi

# serve runs the allocation daemon on its default port with debug
# endpoints enabled; override SERVE_FLAGS for a different shape.
SERVE_FLAGS ?= -listen 127.0.0.1:7800
serve:
	$(GO) run ./cmd/copaserve $(SERVE_FLAGS)

# loadtest drives the httptest-based serving load/shedding suites
# verbosely: the single-backend suite (mixed cache hits/misses, 503
# shedding, SIGTERM drain) and the front-tier suite (multi-backend
# topology with one backend degraded through a seeded fault-injecting
# transport, hedged p99 SLO, priority shed order).
loadtest:
	$(GO) test -v -run 'TestLoad|TestQueueFull|TestSigterm' ./cmd/copaserve
	$(GO) test -v -run 'TestRouterLoad|TestRouterPriority|TestRouterHedges' ./internal/router

# campaign runs a checkpointed sweep with the paper's population;
# override CAMPAIGN_FLAGS to scale it up (-topologies 100000).
CAMPAIGN_FLAGS ?= -topologies 30 -checkpoint campaign.jsonl -out campaign.json
campaign:
	$(GO) run ./cmd/copacampaign $(CAMPAIGN_FLAGS)

# campaign-smoke is the CI sweep gate: the engine's kill-at-unit-K +
# resume golden tests and the CLI end-to-end suite, under -race.
campaign-smoke:
	$(GO) test -race -run 'TestRun|TestCampaign' ./internal/campaign ./cmd/copacampaign ./internal/testbed

# fleet-smoke is the CI distribution gate: the byte-identity goldens
# (N workers, worker killed mid-lease, coordinator kill/resume, lossy
# transport) under -race, then a scripted two-process coordinator/worker
# run cmp'd against a single-process run of the same spec.
fleet-smoke:
	$(GO) test -race -run 'TestFleet|TestRunFleet' ./internal/fleet ./cmd/copacampaign
	./scripts/fleet_smoke.sh

# router-smoke is the CI front-tier gate (DESIGN §15): the router's
# byte-identity, failover, hedging, priority-shedding and churn suites
# under the race detector, then a scripted 3-backend + 1-router run —
# canonical responses through the router cmp'd against a direct
# copaserve, one backend SIGKILLed under mixed-priority load with zero
# accepted interactive requests lost.
router-smoke:
	$(GO) test -race -run 'TestRouter|TestRing|TestLatencyTracker' ./internal/router ./cmd/coparouter ./cmd/copaload
	./scripts/router_smoke.sh

clean:
	$(GO) clean ./...
