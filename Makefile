# Development targets for the COPA reproduction. Tier-1 CI is
# `make build test`; `make race vet` is the extended gate this repo's
# observability layer is verified under.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test race vet bench bench-obs fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race includes the obs registry stress test (internal/obs/stress_test.go).
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates every paper figure/table and times the pipeline.
bench:
	$(GO) test -bench=. -benchmem ./...

# bench-obs compares the instrumented hot path against obs.Disabled().
bench-obs:
	$(GO) test -run XXX -bench 'EquiSNR|EvaluateAll' -benchmem -count=3 .

# fuzz campaigns the wire-format parsers (go test accepts one -fuzz
# target per invocation, hence the sequence). FUZZTIME=2m make fuzz for
# a longer run.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzITSInitParse$$' -fuzztime $(FUZZTIME) ./internal/mac
	$(GO) test -run '^$$' -fuzz '^FuzzITSReqParse$$' -fuzztime $(FUZZTIME) ./internal/mac
	$(GO) test -run '^$$' -fuzz '^FuzzITSAckParse$$' -fuzztime $(FUZZTIME) ./internal/mac
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeMatrices$$' -fuzztime $(FUZZTIME) ./internal/csi

clean:
	$(GO) clean ./...
