# Development targets for the COPA reproduction. Tier-1 CI is
# `make build test`; `make race vet` is the extended gate this repo's
# observability layer is verified under.

GO ?= go

.PHONY: all build test race vet bench bench-obs clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race includes the obs registry stress test (internal/obs/stress_test.go).
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates every paper figure/table and times the pipeline.
bench:
	$(GO) test -bench=. -benchmem ./...

# bench-obs compares the instrumented hot path against obs.Disabled().
bench-obs:
	$(GO) test -run XXX -bench 'EquiSNR|EvaluateAll' -benchmem -count=3 .

clean:
	$(GO) clean ./...
