package copa

import (
	"testing"

	"copa/internal/campaign"
	"copa/internal/channel"
)

// BenchmarkFleetMergeShard times the coordinator's merge step: folding
// one completed unit's columns into the campaign accumulator via
// campaign.MergeUnit — the exact call both the single-process finalizer
// and the fleet coordinator's in-order drain make per unit. This is the
// coordinator's per-unit serial section (everything else the fleet does
// is concurrent evaluation on workers), so its cost bounds how fast a
// coordinator can absorb completions. Gated by copabench: growth here
// means merge-side bookkeeping crept into the per-unit path.
func BenchmarkFleetMergeShard(b *testing.B) {
	spec := campaign.Spec{
		Seed:         benchSeed,
		Scenario:     channel.Scenario1x1,
		Topologies:   8,
		Shards:       1,
		Profiles:     campaign.DefaultProfiles(),
		AgeBuckets:   1,
		SkipCOPAPlus: true,
	}
	ur, err := campaign.EvalUnit(spec, 0, nil, func() error { return nil })
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		into := make(map[string]*campaign.Column)
		campaign.MergeUnit(into, ur)
		if len(into) != len(ur.Columns) {
			b.Fatalf("merged %d columns, want %d", len(into), len(ur.Columns))
		}
	}
	b.StopTimer()
}
