package copa

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// BenchmarkServeAllocateCold times a full served evaluation: every
// iteration asks for a world the cache has never seen, so the request
// goes through admission, the worker pool, and one EvaluateAll on the
// worker's reused arena. Allocations per op are deterministic (the pool
// deliberately avoids sync.Pool) and gated by copabench.
func BenchmarkServeAllocateCold(b *testing.B) {
	cfg := DefaultServerConfig()
	cfg.Workers = 1 // serial: keeps allocs/op independent of scheduling
	cfg.CacheEntries = -1
	srv := NewServer(cfg)
	defer srv.Close()
	req := AllocateRequest{
		Scenario:    Scenario1x1,
		Mode:        ModeMax,
		Impairments: DefaultImpairments(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seed = int64(i)
		if _, _, err := srv.Allocate(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// BenchmarkServeAllocateCached times the steady-state hot path the
// serving layer is built around: a warm cache hit must complete with
// ZERO allocations per request — the acceptance gate for the zero
// steady-state allocation claim in DESIGN §9.
func BenchmarkServeAllocateCached(b *testing.B) {
	cfg := DefaultServerConfig()
	cfg.Coherence = 30 * time.Millisecond
	srv := NewServer(cfg)
	defer srv.Close()
	req := AllocateRequest{
		Scenario:    Scenario4x2,
		Seed:        7,
		Mode:        ModeMax,
		Impairments: DefaultImpairments(),
	}
	if _, _, err := srv.Allocate(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	// One priming hit, then collect the setup garbage: a GC cycle that
	// starts mid-loop would bill its own runtime allocations to the
	// steady state and mask the zero-allocation contract.
	if _, cached, err := srv.Allocate(context.Background(), req); err != nil || !cached {
		b.Fatalf("priming hit: cached=%v err=%v", cached, err)
	}
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, cached, err := srv.Allocate(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !cached || res == nil {
			b.Fatal("warm request missed the cache")
		}
	}
	// The timer keeps running until the function returns, so the pool
	// teardown must not be billed to the measured steady state.
	b.StopTimer()
}
