// Benchmark for the batched Hermitian eigensolver kernels that carry
// the evaluation hot path (DESIGN §13). One timed unit decomposes all
// ofdm.NumSubcarriers (52) subcarrier matrices of one (mode, follower)
// pass in a single EigHermitianBatch call, once per specialized order:
// 2×2 closed form, 3×3 Cardano, 4×4 unrolled cyclic Jacobi.
//
// The perf gate (BENCH_baseline.json) pins allocs/op at 0: with a
// warmed workspace arena the batched kernels must never touch the Go
// allocator.
package copa

import (
	"fmt"
	"math/rand"
	"testing"

	"copa/internal/linalg"
	"copa/internal/ofdm"
)

// randHermitianData fills one n×n Hermitian matrix in the batch's
// struct-of-arrays layout: lane (i,j) of subcarrier k lives at
// (i*n+j)*count+k.
func randHermitianData(rnd *rand.Rand, data []complex128, n, count, k int) {
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := complex(rnd.NormFloat64(), rnd.NormFloat64())
			if i == j {
				v = complex(2*float64(n)+rnd.Float64(), 0) // diagonally loaded, PSD-ish
			}
			data[(i*n+j)*count+k] = v
			data[(j*n+i)*count+k] = complex(real(v), -imag(v))
		}
	}
}

func BenchmarkEigHermitianBatch(b *testing.B) {
	const count = ofdm.NumSubcarriers
	for _, n := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			rnd := rand.New(rand.NewSource(int64(1000 + n)))
			src := make([]complex128, n*n*count)
			for k := 0; k < count; k++ {
				randHermitianData(rnd, src, n, count, k)
			}

			var ws linalg.Workspace
			run := func() float64 {
				ws.Reset()
				batch := ws.HermitianBatch(n, count)
				copy(batch.Data, src)
				res := linalg.EigHermitianBatch(&ws, &batch)
				return res.Val(0, 0)
			}
			run() // warm the arena so steady state is measured

			b.ReportAllocs()
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += run()
			}
			benchSink = sink
		})
	}
}

// benchSink defeats dead-code elimination of the benchmark loop.
var benchSink float64
