// Benchmarks that regenerate every table and figure of the COPA paper's
// evaluation. Each benchmark prints its full reproduction once (the same
// rows/series the paper reports, with the paper's numbers alongside) and
// then times the per-topology pipeline underlying it.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
package copa

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"copa/internal/channel"
	"copa/internal/power"
	"copa/internal/rng"
	"copa/internal/strategy"
	"copa/internal/testbed"
)

// benchSeed keeps every benchmark's testbed identical run to run.
const benchSeed = 1

// benchTopologies mirrors the paper's 30-topology populations.
const benchTopologies = 30

var printOnce sync.Map

// once runs f a single time per key across the whole bench run.
func once(key string, f func()) {
	o, _ := printOnce.LoadOrStore(key, &sync.Once{})
	o.(*sync.Once).Do(f)
}

// timeOneTopology is the standard timed unit: evaluate every strategy on
// one 4×2 topology.
func timeOneTopology(b *testing.B, sc channel.Scenario) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.New(int64(i))
		dep := channel.NewDeployment(src.Split(1), sc)
		ev := strategy.NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
		if _, err := ev.EvaluateAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	once("fig2", func() {
		f := testbed.RunFigure2(benchSeed)
		min, max := f.PowerDBm[0][0], f.PowerDBm[0][0]
		for a := 0; a < 2; a++ {
			for _, v := range f.PowerDBm[a] {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
		}
		fmt.Printf("\n[Figure 2] per-subcarrier received power: %.1f…%.1f dBm (spread %.1f dB; paper shows ≈±15 dB swings)\n",
			min, max, max-min)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testbed.RunFigure2(int64(i))
	}
}

func BenchmarkFigure3(b *testing.B) {
	once("fig3", func() {
		f := testbed.RunFigure3(benchSeed, benchTopologies)
		fmt.Printf("\n[Figure 3] nulling end-to-end: INR %+0.1f dB (paper ≈−27) · SNR %+0.1f dB (paper ≈−8) · SINR %+0.1f dB (paper ≈+18)\n",
			f.INRReductionMeanDB, f.SNRReductionMeanDB, f.SINRIncreaseMeanDB)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testbed.RunFigure3(int64(i), 3)
	}
}

func BenchmarkFigure4(b *testing.B) {
	once("fig4", func() {
		f := testbed.RunFigure4(benchSeed)
		mean := func(xs []float64) float64 { return testbed.Mean(xs) }
		fmt.Printf("\n[Figure 4] per-subcarrier means: SNR-BF %.1f dB, SNR-Null %.1f dB, SINR-Null %.1f dB (min %.1f)\n",
			mean(f.SNRBFDB), mean(f.SNRNullDB), mean(f.SINRNullDB), testbed.Percentile(f.SINRNullDB, 0))
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testbed.RunFigure4(int64(i))
	}
}

func BenchmarkTable1(b *testing.B) {
	once("table1", func() {
		rows := testbed.Table1()
		fmt.Printf("\n[Table 1] MAC overhead %% (paper: conc 9.3/5.1/4.5, seq 7.7/3.5/2.8, CTS 2.7, RTS 3.7)\n")
		for _, r := range rows {
			fmt.Printf("  tc=%-6s conc %.1f%%  seq %.1f%%  cts %.1f%%  rts %.1f%%\n",
				r.Coherence, r.COPAConc*100, r.COPASeq*100, r.CSMACTS*100, r.CSMARTS*100)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testbed.Table1()
	}
}

func BenchmarkFigure7(b *testing.B) {
	once("fig7", func() {
		f := testbed.RunFigure7(benchSeed)
		drops := 0
		for _, d := range f.Dropped {
			if d {
				drops++
			}
		}
		fmt.Printf("\n[Figure 7] same nulling precoder: COPA %s %.1f Mb/s (drops %d subcarriers) vs NoPA %s %.1f Mb/s (paper: 32.4 vs 12.6, 8 drops)\n",
			f.COPAMCS, f.COPAMbps, drops, f.NoPAMCS, f.NoPAMbps)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testbed.RunFigure7(int64(i))
	}
}

func BenchmarkFigure9(b *testing.B) {
	once("fig9", func() {
		f := testbed.RunFigure9(benchSeed, benchTopologies)
		below := 0
		for i := range f.SignalDBm {
			if f.InterferenceDBm[i] < f.SignalDBm[i] {
				below++
			}
		}
		fmt.Printf("\n[Figure 9] topology scatter: signal %.0f…%.0f dBm; interference below signal at %d/%d clients (paper: most, not all)\n",
			testbed.Percentile(f.SignalDBm, 0), testbed.Percentile(f.SignalDBm, 100),
			below, len(f.SignalDBm))
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testbed.RunFigure9(int64(i), 5)
	}
}

// scenarioBench prints one of the Fig. 10–13 scheme tables and times the
// per-topology pipeline.
func scenarioBench(b *testing.B, key, label string, sc channel.Scenario, deltaDB float64, paper map[string]float64) {
	once(key, func() {
		cfg := testbed.DefaultConfig(benchSeed)
		cfg.Topologies = benchTopologies
		cfg.InterferenceDeltaDB = deltaDB
		res, err := testbed.RunScenario(context.Background(), sc, cfg)
		if err != nil {
			fmt.Printf("%s: %v\n", label, err)
			return
		}
		fmt.Printf("\n[%s] mean aggregate throughput, %d topologies:\n", label, benchTopologies)
		for _, scheme := range testbed.AllSchemes {
			vals, ok := res.PerTopology[scheme]
			if !ok {
				continue
			}
			ref := ""
			if p, ok := paper[scheme]; ok {
				ref = fmt.Sprintf("   [paper %.1f]", p)
			}
			fmt.Printf("  %-10s %6.1f Mb/s%s\n", scheme, testbed.Mean(vals)/1e6, ref)
		}
	})
	timeOneTopology(b, sc)
}

func BenchmarkFigure10(b *testing.B) {
	scenarioBench(b, "fig10", "Figure 10: 1x1", channel.Scenario1x1, 0, map[string]float64{
		testbed.SchemeCSMA: 47.7, testbed.SchemeCOPASeq: 51.6,
		testbed.SchemeCOPAFair: 53.3, testbed.SchemeCOPA: 54.7,
		testbed.SchemeCOPAPF: 53.7, testbed.SchemeCOPAP: 55.0,
	})
}

func BenchmarkFigure11(b *testing.B) {
	scenarioBench(b, "fig11", "Figure 11: 4x2 constrained", channel.Scenario4x2, 0, map[string]float64{
		testbed.SchemeCSMA: 110.1, testbed.SchemeCOPASeq: 110.4, testbed.SchemeNull: 83.1,
		testbed.SchemeCOPAFair: 123.9, testbed.SchemeCOPA: 128.1,
		testbed.SchemeCOPAPF: 132.0, testbed.SchemeCOPAP: 136.2,
	})
}

func BenchmarkFigure12(b *testing.B) {
	scenarioBench(b, "fig12", "Figure 12: 4x2, interference −10 dB", channel.Scenario4x2, -10, map[string]float64{
		testbed.SchemeCSMA: 110.1, testbed.SchemeCOPASeq: 110.4, testbed.SchemeNull: 131.7,
		testbed.SchemeCOPAFair: 175.8, testbed.SchemeCOPA: 178.8,
		testbed.SchemeCOPAPF: 184.4, testbed.SchemeCOPAP: 185.9,
	})
}

func BenchmarkFigure13(b *testing.B) {
	scenarioBench(b, "fig13", "Figure 13: 3x2 overconstrained", channel.Scenario3x2, 0, map[string]float64{
		testbed.SchemeCSMA: 104.1, testbed.SchemeCOPASeq: 108.9, testbed.SchemeNull: 87.4,
		testbed.SchemeCOPAFair: 117.8, testbed.SchemeCOPA: 121.6,
		testbed.SchemeCOPAPF: 122.9, testbed.SchemeCOPAP: 126.4,
	})
}

func BenchmarkFigure14(b *testing.B) {
	once("fig14", func() {
		f, err := testbed.RunFigure14(context.Background(), benchSeed, 12)
		if err != nil {
			fmt.Printf("figure 14: %v\n", err)
			return
		}
		fmt.Printf("\n[Figure 14] %% improvement over 1-decoder CSMA (paper: multi-decoder helps CSMA in 1x1, COPA gains ≈10%%/5%% in 4x2/3x2):\n")
		for _, scheme := range testbed.Figure14Schemes {
			fmt.Printf("  %-22s", scheme)
			for _, sc := range []string{"1x1", "4x2", "3x2"} {
				fmt.Printf("  %s %+6.1f%%", sc, f.Improvement[sc][scheme])
			}
			fmt.Println()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Timed unit: one topology evaluated under both decoder models.
		src := rng.New(int64(i))
		dep := channel.NewDeployment(src.Split(1), channel.Scenario4x2)
		for _, multi := range []bool{false, true} {
			ev := strategy.NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
			ev.MultiDecoder = multi
			if _, err := ev.EvaluateAll(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkHeadlines(b *testing.B) {
	once("headlines", func() {
		cfg := testbed.DefaultConfig(benchSeed)
		cfg.Topologies = benchTopologies
		cfg.SkipCOPAPlus = true
		res, err := testbed.RunScenario(context.Background(), channel.Scenario4x2, cfg)
		if err != nil {
			fmt.Printf("headlines: %v\n", err)
			return
		}
		hs := testbed.Headlines(res)
		fmt.Printf("\n[§1 headlines] Null loses to CSMA %.0f%% (paper 83%%) · COPA over Null %+0.0f%% (paper +64%%) · COPA beats CSMA %.0f%% (paper 76%%)\n",
			hs.NullLosesToCSMA*100, hs.COPAOverNullWhereNullLoses*100, hs.COPABeatsCSMAWhereNullLoses*100)
	})
	timeOneTopology(b, channel.Scenario4x2)
}

// Ablation benches (DESIGN.md §5): design choices the paper motivates.

func BenchmarkAblationEquiSINRIterations(b *testing.B) {
	once("ablIters", func() {
		var out string
		for _, iters := range []int{1, 2, 4, 12} {
			master := rng.New(benchSeed)
			var agg float64
			n := 10
			for t := 0; t < n; t++ {
				src := master.Split(uint64(t))
				dep := channel.NewDeployment(src.Split(1), channel.Scenario4x2)
				ev := strategy.NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
				ev.Alloc.MaxIters = iters
				outs, err := ev.EvaluateAll()
				if err != nil {
					continue
				}
				agg += strategy.Select(strategy.ModeMax, outs).Aggregate()
			}
			out += fmt.Sprintf("  iters=%-2d COPA %.1f Mb/s\n", iters, agg/float64(n)/1e6)
		}
		fmt.Printf("\n[Ablation] Equi-SINR iteration count (Fig. 6 loop):\n%s", out)
	})
	timeOneTopology(b, channel.Scenario4x2)
}

func BenchmarkAblationDropVsAlloc(b *testing.B) {
	once("ablDropAlloc", func() {
		// §4.2: "either one, by itself gives about 60-70% of the
		// improvement, but both are needed together for the full
		// benefits" — measured on the 1x1 scenario, COPA-SEQ vs CSMA.
		inners := []struct {
			name  string
			inner power.InnerAllocator
		}{
			{"both (Equi-SNR)", power.EquiSNR},
			{"drop-only", power.DropOnly},
			{"equalize-only", power.EqualizeOnly},
		}
		master := rng.New(benchSeed)
		const n = 20
		deps := make([]*channel.Deployment, n)
		for t := 0; t < n; t++ {
			deps[t] = channel.NewDeployment(master.Split(uint64(t)), channel.Scenario1x1)
		}
		var csma float64
		gains := make([]float64, len(inners))
		for t, dep := range deps {
			for i, in := range inners {
				ev := strategy.NewEvaluator(dep, channel.DefaultImpairments(), rng.New(int64(t)))
				ev.Alloc.Inner = in.inner
				base, err := ev.EvaluateCSMA()
				if err != nil {
					continue
				}
				seq, err := ev.EvaluateCOPASeq()
				if err != nil {
					continue
				}
				if i == 0 {
					csma += base.Aggregate()
				}
				gains[i] += seq.Aggregate() - base.Aggregate()
			}
		}
		fmt.Printf("\n[Ablation] subcarrier selection vs power shaping (1x1, COPA-SEQ gain over CSMA %.1f Mb/s):\n", csma/n/1e6)
		for i, in := range inners {
			frac := 100.0
			if gains[0] > 0 {
				frac = gains[i] / gains[0] * 100
			}
			fmt.Printf("  %-17s %+6.2f Mb/s  (%.0f%% of the full gain; paper: each alone ≈60-70%%)\n",
				in.name, gains[i]/n/1e6, frac)
		}
	})
	timeOneTopology(b, channel.Scenario1x1)
}

func BenchmarkAblationCSMABaseline(b *testing.B) {
	once("ablCSMABase", func() {
		// How much of the CSMA baseline's strength comes from implicit
		// beamforming? Compare against stock direct-mapped streams.
		master := rng.New(benchSeed)
		const n = 15
		var bf, dm float64
		for t := 0; t < n; t++ {
			dep := channel.NewDeployment(master.Split(uint64(t)), channel.Scenario4x2)
			ev := strategy.NewEvaluator(dep, channel.DefaultImpairments(), rng.New(int64(t)))
			a, err := ev.EvaluateCSMA()
			if err != nil {
				continue
			}
			c, err := ev.EvaluateCSMADirectMap()
			if err != nil {
				continue
			}
			bf += a.Aggregate()
			dm += c.Aggregate()
		}
		fmt.Printf("\n[Ablation] CSMA baseline precoding (4x2): beamformed %.1f Mb/s vs direct-mapped %.1f Mb/s\n",
			bf/n/1e6, dm/n/1e6)
	})
	timeOneTopology(b, channel.Scenario4x2)
}

func BenchmarkAblationFairness(b *testing.B) {
	once("ablFair", func() {
		cfg := testbed.DefaultConfig(benchSeed)
		cfg.Topologies = 20
		cfg.SkipCOPAPlus = true
		var lines string
		for _, sc := range []channel.Scenario{channel.Scenario1x1, channel.Scenario4x2, channel.Scenario3x2} {
			res, err := testbed.RunScenario(context.Background(), sc, cfg)
			if err != nil {
				continue
			}
			max := testbed.Mean(res.PerTopology[testbed.SchemeCOPA])
			fair := testbed.Mean(res.PerTopology[testbed.SchemeCOPAFair])
			lines += fmt.Sprintf("  %-4s COPA %.1f vs fair %.1f Mb/s (price %.1f%%)\n",
				sc.Name, max/1e6, fair/1e6, (1-fair/max)*100)
		}
		fmt.Printf("\n[Ablation] price of incentive compatibility (§3.5):\n%s", lines)
	})
	timeOneTopology(b, channel.Scenario4x2)
}

func BenchmarkAblationCoherenceTime(b *testing.B) {
	once("ablCoherence", func() {
		m := testbed.Table1()
		_ = m
		var lines string
		for _, tc := range []time.Duration{4 * time.Millisecond, 30 * time.Millisecond, 200 * time.Millisecond, time.Second} {
			master := rng.New(benchSeed)
			var agg float64
			n := 10
			for t := 0; t < n; t++ {
				src := master.Split(uint64(t))
				dep := channel.NewDeployment(src.Split(1), channel.Scenario4x2)
				ev := strategy.NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
				ev.Coherence = tc
				outs, err := ev.EvaluateAll()
				if err != nil {
					continue
				}
				agg += strategy.Select(strategy.ModeMax, outs).Aggregate()
			}
			lines += fmt.Sprintf("  tc=%-6s COPA %.1f Mb/s\n", tc, agg/float64(n)/1e6)
		}
		fmt.Printf("\n[Ablation] ITS overhead vs coherence time:\n%s", lines)
	})
	timeOneTopology(b, channel.Scenario4x2)
}

func BenchmarkPredictionAccuracy(b *testing.B) {
	once("predAcc", func() {
		acc, err := testbed.RunPredictionAccuracy(context.Background(), benchSeed, 20)
		if err != nil {
			fmt.Printf("prediction accuracy: %v\n", err)
			return
		}
		fmt.Printf("\n[Analysis] prediction gap (§3.3 \"not so easy\"): COPA-SEQ MAE %.0f%%, Conc-Null MAE %.0f%%, mispicks %.0f%% costing %.0f%% each\n",
			acc.MAEByKind[strategy.KindCOPASeq]*100, acc.MAEByKind[strategy.KindConcNull]*100,
			acc.MispickRate*100, acc.MispickCostMean*100)
	})
	timeOneTopology(b, channel.Scenario4x2)
}

func BenchmarkSeedRobustness(b *testing.B) {
	once("robust", func() {
		cfg := testbed.DefaultConfig(benchSeed)
		cfg.Topologies = 10
		cfg.SkipCOPAPlus = true
		rob, err := testbed.RunSeedRobustness(context.Background(), channel.Scenario4x2, cfg, 3)
		if err != nil {
			fmt.Printf("robustness: %v\n", err)
			return
		}
		fmt.Printf("\n[Analysis] across-seed stability (3 seeds × 10 topologies):\n")
		for _, scheme := range []string{testbed.SchemeCSMA, testbed.SchemeNull, testbed.SchemeCOPA} {
			fmt.Printf("  %-6s %.1f ± %.1f Mb/s\n", scheme,
				rob.MeanOfMeans[scheme]/1e6, rob.StdOfMeans[scheme]/1e6)
		}
	})
	timeOneTopology(b, channel.Scenario4x2)
}

func BenchmarkAblationJointAware(b *testing.B) {
	once("ablJoint", func() {
		// Extension study: does replacing the paper's per-stream drop
		// heuristic with a joint-MCS-aware allocation help? (Finding: the
		// per-stream heuristic is already near-optimal.)
		master := rng.New(benchSeed)
		var per, joint float64
		const n = 10
		for t := 0; t < n; t++ {
			src := master.Split(uint64(t))
			dep := channel.NewDeployment(src.Split(1), channel.Scenario4x2)
			evA := strategy.NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
			outsA, err := evA.EvaluateAll()
			if err != nil {
				continue
			}
			evB := strategy.NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
			evB.Alloc.JointInner = power.JointAware
			outsB, err := evB.EvaluateAll()
			if err != nil {
				continue
			}
			per += strategy.Select(strategy.ModeMax, outsA).Aggregate()
			joint += strategy.Select(strategy.ModeMax, outsB).Aggregate()
		}
		fmt.Printf("\n[Ablation] per-stream Equi-SINR %.1f Mb/s vs joint-MCS-aware %.1f Mb/s (extension; paper's heuristic is near-optimal)\n",
			per/n/1e6, joint/n/1e6)
	})
	timeOneTopology(b, channel.Scenario4x2)
}

func BenchmarkBacklogDrain(b *testing.B) {
	once("backlog", func() {
		// §3.5: "clears any transmission backlog fastest" — sweep offered
		// load per client and find where each scheme's queues blow up.
		fmt.Printf("\n[Extension] backlog drain (§3.5): worst-client mean frame delay (ms) vs offered load.\n")
		fmt.Printf("  Max mode may starve the weaker client (∞) — the reason fair mode exists:\n")
		fmt.Printf("  %-12s", "load (Mb/s)")
		loads := []float64{20e6, 40e6, 55e6, 70e6}
		for _, l := range loads {
			fmt.Printf("  %6.0f", l/1e6)
		}
		fmt.Println()
		type row struct {
			name string
			get  func(testbed.BacklogComparison) [2]float64
		}
		for _, r := range []row{
			{"CSMA", func(c testbed.BacklogComparison) [2]float64 { return c.CSMADelaySec }},
			{"COPA (max)", func(c testbed.BacklogComparison) [2]float64 { return c.COPADelaySec }},
			{"COPA fair", func(c testbed.BacklogComparison) [2]float64 { return c.COPAFairDelaySec }},
		} {
			fmt.Printf("  %-12s", r.name)
			for _, l := range loads {
				cmp, err := testbed.RunBacklogComparison(benchSeed+2, l, 2500)
				if err != nil {
					fmt.Printf("  %6s", "err")
					continue
				}
				d := r.get(cmp)
				worst := d[0]
				if d[1] > worst {
					worst = d[1]
				}
				if worst > 1e6 {
					fmt.Printf("  %6s", "∞")
				} else {
					fmt.Printf("  %6.1f", worst*1e3)
				}
			}
			fmt.Println()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := testbed.RunBacklogComparison(int64(i), 30e6, 500); err != nil {
			b.Fatal(err)
		}
	}
}
