// Package copa is a simulator-backed reproduction of COPA — CoOperative
// Power Allocation for interfering wireless networks (CoNEXT 2015).
//
// COPA lets two Wi-Fi APs owned by different parties coordinate over the
// air: they exchange channel state in ITS control frames, null toward one
// another's clients, and cooperatively allocate per-subcarrier transmit
// power — dropping hopeless subcarriers outright — so that concurrent
// transmission beats taking turns.
//
// The package re-exports the user-facing surface of the internal
// implementation:
//
//   - topology & channel generation (the simulated indoor testbed),
//   - the strategy evaluator (CSMA / COPA-SEQ / nulling / concurrent
//     variants, max and incentive-compatible selection),
//   - the power allocators (Equi-SNR, Equi-SINR, mercury/water-filling),
//   - the over-the-air ITS protocol between two AP instances,
//   - the experiment harness that regenerates every figure and table in
//     the paper's evaluation.
//
// See the examples/ directory for runnable walk-throughs and cmd/copasim
// for the full evaluation CLI.
package copa

import (
	"context"
	"io"
	"log/slog"
	"time"

	"copa/internal/channel"
	"copa/internal/core"
	"copa/internal/csi"
	"copa/internal/drift"
	"copa/internal/mac"
	"copa/internal/obs"
	"copa/internal/power"
	"copa/internal/precoding"
	"copa/internal/rng"
	"copa/internal/serve"
	"copa/internal/strategy"
	"copa/internal/testbed"
)

// Rand is the deterministic, splittable random source every simulator
// component draws from; the same seed always reproduces the same world.
type Rand = rng.Source

// NewRand returns a seeded random source.
func NewRand(seed int64) *Rand { return rng.New(seed) }

// Scenario is an antenna configuration (1x1, 4x2, 3x2).
type Scenario = channel.Scenario

// The paper's three evaluation scenarios.
var (
	Scenario1x1 = channel.Scenario1x1
	Scenario4x2 = channel.Scenario4x2
	Scenario3x2 = channel.Scenario3x2
)

// Deployment is one concrete two-AP/two-client topology with all its
// frequency-selective channels.
type Deployment = channel.Deployment

// Link is a frequency-selective MIMO channel.
type Link = channel.Link

// Impairments model the radio hardware (CSI error, TX EVM, staleness).
type Impairments = channel.Impairments

// DefaultImpairments returns the WARP-class calibration used throughout
// the paper reproduction.
func DefaultImpairments() Impairments { return channel.DefaultImpairments() }

// PerfectHardware disables all impairments (idealized nulling).
func PerfectHardware() Impairments { return channel.PerfectHardware() }

// NewDeployment draws one topology for a scenario from the given seed.
func NewDeployment(seed int64, sc Scenario) *Deployment {
	return channel.NewDeployment(rng.New(seed), sc)
}

// GenerateTestbed draws a deterministic population of topologies.
func GenerateTestbed(seed int64, sc Scenario, n int) []*Deployment {
	return channel.GenerateTestbed(seed, sc, n)
}

// Strategy kinds and selection modes.
type (
	// StrategyKind identifies a medium-access strategy (CSMA, COPA-SEQ,
	// vanilla nulling, concurrent beamforming, concurrent nulling).
	StrategyKind = strategy.Kind
	// Mode selects between throughput-maximizing and incentive-compatible
	// ("fair") strategy choice.
	Mode = strategy.Mode
	// Outcome is one strategy's evaluation on one topology.
	Outcome = strategy.Outcome
	// Evaluator runs every strategy on a topology.
	Evaluator = strategy.Evaluator
)

// Strategy kind and mode constants.
const (
	KindCSMA     = strategy.KindCSMA
	KindCOPASeq  = strategy.KindCOPASeq
	KindNull     = strategy.KindNull
	KindConcBF   = strategy.KindConcBF
	KindConcNull = strategy.KindConcNull

	ModeMax  = strategy.ModeMax
	ModeFair = strategy.ModeFair
)

// NewEvaluator builds an evaluator for a deployment: CSI is estimated
// with the impairment model, then every strategy can be scored on both
// the estimates (what an AP would predict) and the true channels.
func NewEvaluator(dep *Deployment, imp Impairments, seed int64) *Evaluator {
	return strategy.NewEvaluator(dep, imp, rng.New(seed))
}

// Select applies COPA's decision rule over evaluated outcomes.
func Select(mode Mode, outcomes map[StrategyKind]Outcome) Outcome {
	return strategy.Select(mode, outcomes)
}

// AP-level protocol types: COPA APs exchanging real ITS frames.
type (
	// AP is a COPA access point with its CSI cache and strategy policy.
	AP = core.AP
	// Pair wires two APs to a physical deployment for simulation.
	Pair = core.Pair
	// Session is the result of one ITS exchange.
	Session = core.Session
	// Cluster simulates >2 APs sharing the medium (§3.1 fairness).
	Cluster = core.Cluster
	// ClusterStats aggregates cluster rounds.
	ClusterStats = core.ClusterStats
	// ScheduleConfig drives a time-domain simulation with drifting
	// channels and periodic CSI refresh.
	ScheduleConfig = core.ScheduleConfig
	// ScheduleResult summarizes a schedule run.
	ScheduleResult = core.ScheduleResult
	// MultiDeployment is an n-pair topology for cluster simulations.
	MultiDeployment = channel.MultiDeployment
)

// NewPair builds two COPA APs on a deployment.
func NewPair(dep *Deployment, imp Impairments, coherence time.Duration, mode Mode, seed int64) *Pair {
	return core.NewPair(dep, imp, coherence, mode, rng.New(seed))
}

// NewMultiDeployment draws n AP/client pairs on the office floor.
func NewMultiDeployment(seed int64, sc Scenario, n int) (*MultiDeployment, error) {
	return channel.NewMultiDeployment(rng.New(seed), sc, n)
}

// NewCluster builds n COPA APs over a multi-pair deployment.
func NewCluster(dep *MultiDeployment, imp Impairments, coherence time.Duration, mode Mode, seed int64) *Cluster {
	return core.NewCluster(dep, imp, coherence, mode, rng.New(seed))
}

// Power allocation API.
type (
	// Allocation is a per-subcarrier power assignment for one stream.
	Allocation = power.Allocation
	// AllocConfig parameterizes the Equi-SINR iteration.
	AllocConfig = power.Config
)

// Power allocators (see internal/power for details).
var (
	// EquiSNR is Algorithm 1: drop the worst subcarriers, equalize the
	// rest, keep the throughput-maximizing drop count.
	EquiSNR = power.EquiSNR
	// Waterfill is classic Gaussian-input waterfilling.
	Waterfill = power.Waterfill
	// MercuryWaterfill is the discrete-constellation optimum.
	MercuryWaterfill = power.MercuryWaterfill
	// MercuryBest picks the best constellation's mercury/WF allocation.
	MercuryBest = power.MercuryBest
)

// Precoding API.
type (
	// Precoder holds per-subcarrier precoding matrices.
	Precoder = precoding.Precoder
	// Transmission couples a precoder with a power allocation.
	Transmission = precoding.Transmission
)

// Precoder builders.
var (
	// Beamforming builds SVD transmit beamforming toward a client.
	Beamforming = precoding.Beamforming
	// Nulling beamforms within the nullspace of the victim's channel.
	Nulling = precoding.Nulling
)

// ErrOverconstrained is returned when nulling lacks spatial degrees of
// freedom (§3.4); shut-down-antenna rank reduction is the remedy.
var ErrOverconstrained = precoding.ErrOverconstrained

// CSI compression (adaptive delta modulation + DEFLATE).
var (
	// EncodeCSI compresses a channel estimate for an ITS REQ payload.
	EncodeCSI = csi.EncodeLink
	// DecodeCSI reverses EncodeCSI.
	DecodeCSI = csi.DecodeLink
)

// MAC layer: ITS frames, overheads, contention.
type (
	// OverheadModel computes Table 1's MAC overhead fractions.
	OverheadModel = mac.OverheadModel
	// DCF is the multi-station contention simulator.
	DCF = mac.DCF
)

// DefaultOverheadModel mirrors the paper's 4×2 setting.
func DefaultOverheadModel() OverheadModel { return mac.DefaultOverheadModel() }

// Experiment harness: regenerate the paper's evaluation.
type (
	// ExperimentConfig parameterizes a scenario run.
	ExperimentConfig = testbed.Config
	// ScenarioResult holds per-topology throughputs per scheme.
	ScenarioResult = testbed.ScenarioResult
)

// Scheme names as used in the paper's figure legends.
const (
	SchemeCSMA     = testbed.SchemeCSMA
	SchemeCOPASeq  = testbed.SchemeCOPASeq
	SchemeNull     = testbed.SchemeNull
	SchemeCOPAFair = testbed.SchemeCOPAFair
	SchemeCOPA     = testbed.SchemeCOPA
	SchemeCOPAPF   = testbed.SchemeCOPAPF
	SchemeCOPAP    = testbed.SchemeCOPAP
)

// Statistics helpers for working with scenario results.
var (
	// Mean, Median, Percentile and CDF summarize per-topology data.
	Mean       = testbed.Mean
	Median     = testbed.Median
	Percentile = testbed.Percentile
	CDF        = testbed.CDF
)

// CoherenceTime returns tc = m·λ/v for a host speed in m/s (§3.1).
var CoherenceTime = channel.CoherenceTime

// NullingDOF returns how many streams a sender can transmit while nulling
// at a victim's antennas (§3.4).
var NullingDOF = precoding.NullingDOF

// Observability: every layer of the pipeline records counters, latency
// histograms, and spans into a process-wide registry (see internal/obs).
// Instrumentation is on by default and costs one atomic op per event;
// SetMetricsEnabled(false) turns it into a predictable no-op branch.
type (
	// MetricsSnapshot is a point-in-time copy of every registered metric.
	// It is internally consistent per histogram: Count always equals the
	// sum of the bucket counts.
	MetricsSnapshot = obs.Snapshot
	// HistogramValue is one histogram's snapshot, with Mean and Quantile
	// helpers.
	HistogramValue = obs.HistogramValue
	// SpanRecord is one finished trace span from the in-process ring.
	SpanRecord = obs.SpanRecord
)

// Metrics captures the current value of every copa.* metric.
func Metrics() MetricsSnapshot { return obs.Default().Snapshot() }

// Snapshot is an alias for Metrics.
func Snapshot() MetricsSnapshot { return Metrics() }

// SetMetricsEnabled toggles all instrumentation (metrics, timers, spans).
func SetMetricsEnabled(on bool) { obs.SetEnabled(on) }

// MetricsEnabled reports whether instrumentation is active.
func MetricsEnabled() bool { return obs.Enabled() }

// RecentSpans returns up to n most recent trace spans, newest first
// (n <= 0 returns all retained spans).
func RecentSpans(n int) []SpanRecord { return obs.Tracing().Recent(n) }

// Distributed tracing: hierarchical request-scoped spans propagated
// through context.Context, across HTTP (traceparent header) and ITS
// frames (binary trace context). See internal/obs for the model.
type (
	// TraceSpan is an open hierarchical span; End/EndErr record it.
	TraceSpan = obs.ActiveSpan
	// TraceSpanContext is a span's wire identity (trace ID, span ID,
	// sampling decision).
	TraceSpanContext = obs.SpanContext
)

// StartSpan opens a span: a child when ctx already carries a sampled
// trace, otherwise a new root subject to the sampling rate. The
// returned context carries the span for downstream StartSpan calls.
func StartSpan(ctx context.Context, name string) (context.Context, *TraceSpan) {
	return obs.StartSpan(ctx, name)
}

// TraceSpans returns every retained span of one trace, oldest first.
func TraceSpans(traceID string) []SpanRecord { return obs.Tracing().TraceSpans(traceID) }

// SetTraceSampling sets the fraction of new root traces that record
// hierarchical spans (clamped to [0,1]; remote decisions always win).
func SetTraceSampling(rate float64) { obs.SetTraceSampling(rate) }

// WriteOpenMetrics renders a metrics snapshot in OpenMetrics text
// format (the Prometheus exposition served on /metrics).
func WriteOpenMetrics(w io.Writer, s MetricsSnapshot) error { return obs.WriteOpenMetrics(w, s) }

// WriteTraceJSON dumps every retained span as a JSON array, oldest
// first (the CLIs' -trace-out format).
func WriteTraceJSON(w io.Writer) error { return obs.Tracing().WriteJSON(w) }

// ServeDebug starts an HTTP listener exposing /debug/vars (expvar with
// live copa.* metrics), /debug/metrics, /debug/spans, and /debug/pprof.
// It returns the bound address and a shutdown function.
func ServeDebug(addr string) (string, func(), error) { return obs.ServeDebug(addr) }

// Logger returns the process-wide structured logger the simulator logs
// progress through.
func Logger() *slog.Logger { return obs.Logger() }

// SetVerbose switches the logger between Info (false) and Debug (true).
func SetVerbose(on bool) { obs.SetVerbose(on) }

// Serving layer: allocation-as-a-service on top of the evaluator
// (cmd/copaserve is the HTTP daemon built on this API).
type (
	// Server is a pooled, batching, caching allocation service with
	// admission control and graceful drain (see internal/serve).
	Server = serve.Server
	// ServerConfig sizes the worker pool, queue, batch window and cache.
	ServerConfig = serve.Config
	// AllocateRequest names the world to evaluate: scenario, seed, mode,
	// impairments and CSI age.
	AllocateRequest = serve.Request
	// AllocateResult is the selected outcome plus every strategy's score.
	AllocateResult = serve.Result
	// ServerStats is a point-in-time view of queue and cache occupancy.
	ServerStats = serve.Stats
)

// Serving-layer sentinel errors, usable with errors.Is.
var (
	// ErrQueueFull is returned when admission control sheds a request.
	ErrQueueFull = serve.ErrQueueFull
	// ErrServerClosed is returned once the server is draining or closed.
	ErrServerClosed = serve.ErrServerClosed
	// ErrExpired is returned when a request's deadline passed in queue.
	ErrExpired = serve.ErrExpired
)

// NewServer starts an allocation service with the given configuration;
// zero fields take defaults from DefaultServerConfig.
func NewServer(cfg ServerConfig) *Server { return serve.New(cfg) }

// DefaultServerConfig returns the serving defaults: one worker per CPU,
// a 64-deep queue, a 200µs batch window and a 1024-entry result cache.
func DefaultServerConfig() ServerConfig { return serve.DefaultConfig() }

// Mobility subsystem (DESIGN §14): time-evolving channels plus the
// online incremental re-allocation controller.
type (
	// DriftConfig parameterizes the online re-allocation controller.
	DriftConfig = drift.Config
	// DriftController runs the drift detector + re-allocation loop over
	// one evolving AP pair.
	DriftController = drift.Controller
	// DriftStats accumulates what a controller run did.
	DriftStats = drift.Stats
	// MobilityProfile is a named mobility speed (Static, Pedestrian,
	// Vehicular).
	MobilityProfile = drift.Profile
)

var (
	// NewDriftController builds a controller over a deployment.
	NewDriftController = drift.NewController
	// DefaultDriftConfig returns the standard controller settings.
	DefaultDriftConfig = drift.DefaultConfig
	// Pedestrian and Vehicular are the standard mobility profiles.
	Pedestrian = drift.Pedestrian
	Vehicular  = drift.Vehicular
	// RunMobilitySweep runs the controller over a (threshold, speed,
	// topology) grid — the realized-throughput-vs-speed figure.
	RunMobilitySweep = testbed.RunMobilitySweep
	// DefaultMobilityConfig sizes the sweep to run in seconds.
	DefaultMobilityConfig = testbed.DefaultMobilityConfig
)

// Experiment entry points (one per paper artifact).
var (
	// RunScenario evaluates all schemes over a topology population
	// (Figs. 10–13 with the appropriate scenario and interference).
	RunScenario = testbed.RunScenario
	// DefaultExperimentConfig mirrors the paper: 30 topologies.
	DefaultExperimentConfig = testbed.DefaultConfig
	// Headlines computes the §1 claims from a 4×2 run.
	Headlines = testbed.Headlines
	// RunFigure2 .. RunFigure14 regenerate the micro-measurements.
	RunFigure2  = testbed.RunFigure2
	RunFigure3  = testbed.RunFigure3
	RunFigure4  = testbed.RunFigure4
	RunFigure7  = testbed.RunFigure7
	RunFigure9  = testbed.RunFigure9
	RunFigure14 = testbed.RunFigure14
	// Table1 computes the MAC overhead table.
	Table1 = testbed.Table1
)
