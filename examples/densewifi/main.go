// Dense-apartment sweep: the paper's motivating scenario. We draw a
// population of interfering 4x2 topologies (think: neighbouring flats,
// each with its own AP), evaluate every medium-access strategy on each,
// and print the throughput distribution — a textual rendering of the
// paper's Figure 11 CDFs, plus the §1 headline statistics.
package main

import (
	"context"
	"fmt"
	"os"
	"strings"

	"copa"
)

func main() {
	cfg := copa.DefaultExperimentConfig(1)
	cfg.Topologies = 30
	cfg.SkipCOPAPlus = true // keep the example snappy; copasim runs COPA+

	res, err := copa.RunScenario(context.Background(), copa.Scenario4x2, cfg)
	if err != nil {
		copa.Logger().Error("scenario failed", "scenario", "4x2", "seed", cfg.Seed, "err", err)
		os.Exit(1)
	}

	fmt.Printf("dense Wi-Fi, %d topologies, 4-antenna APs, 2-antenna clients\n\n", cfg.Topologies)
	fmt.Println("aggregate throughput distribution (Mb/s):")
	fmt.Println("  scheme      p10    p25    p50    p75    p90   mean")
	for _, scheme := range []string{
		copa.SchemeCSMA, copa.SchemeCOPASeq, copa.SchemeNull,
		copa.SchemeCOPAFair, copa.SchemeCOPA,
	} {
		vals, ok := res.PerTopology[scheme]
		if !ok {
			continue
		}
		fmt.Printf("  %-10s", scheme)
		for _, p := range []float64{10, 25, 50, 75, 90} {
			fmt.Printf(" %6.1f", copa.Percentile(vals, p)/1e6)
		}
		fmt.Printf(" %6.1f\n", copa.Mean(vals)/1e6)
	}

	// A poor man's CDF sparkline for the two headline schemes.
	fmt.Println("\nCDF sketch (each column = one topology, sorted):")
	for _, scheme := range []string{copa.SchemeCSMA, copa.SchemeNull, copa.SchemeCOPA} {
		vals := append([]float64(nil), res.PerTopology[scheme]...)
		fmt.Printf("  %-10s %s\n", scheme, sparkline(vals, 200e6))
	}

	hs := copa.Headlines(res)
	fmt.Println("\nheadline statistics (paper's §1 claims in brackets):")
	fmt.Printf("  vanilla nulling loses to CSMA on %.0f%% of topologies [83%%]\n", hs.NullLosesToCSMA*100)
	fmt.Printf("  on those, COPA improves nulling by %.0f%% on average   [64%%]\n", hs.COPAOverNullWhereNullLoses*100)
	fmt.Printf("  and beats CSMA on %.0f%% of them                        [76%%]\n", hs.COPABeatsCSMAWhereNullLoses*100)
	fmt.Printf("  price of incentive compatibility: %.1f%%                [small]\n", hs.PriceOfFairness*100)
}

// sparkline renders sorted values as height buckets up to max.
func sparkline(vals []float64, max float64) string {
	ticks := []rune("▁▂▃▄▅▆▇█")
	sorted := append([]float64(nil), vals...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	var b strings.Builder
	for _, v := range sorted {
		idx := int(v / max * float64(len(ticks)))
		if idx >= len(ticks) {
			idx = len(ticks) - 1
		}
		if idx < 0 {
			idx = 0
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}
