// Quickstart: two 4-antenna COPA APs in adjacent offices, each with a
// 2-antenna client. The APs overhear their clients to learn CSI, run one
// full ITS exchange over real marshaled control frames, and transmit with
// the strategy the leader chose. We then score the result on the true
// channels and compare it with what plain CSMA would have achieved.
package main

import (
	"fmt"
	"os"
	"time"

	"copa"
)

func main() {
	// One topology of the simulated office testbed; same seed → same
	// channels, so the walk-through is reproducible.
	dep := copa.NewDeployment(42, copa.Scenario4x2)
	fmt.Printf("topology: %s\n", dep)

	// Wire two COPA APs to the topology. ModeFair = incentive-compatible
	// selection: cooperate only if neither client loses.
	pair := copa.NewPair(dep, copa.DefaultImpairments(), 30*time.Millisecond, copa.ModeFair, 7)

	// Step 1 (Fig. 5): clients transmit, APs overhear and cache CSI.
	pair.MeasureCSI()

	// Steps 2-4: contention elects a leader; ITS INIT → REQ (with
	// compressed CSI) → ACK (with the follower's precoder) negotiate the
	// transmission.
	session, err := pair.RunExchange(4000 /* µs of data airtime */)
	if err != nil {
		copa.Logger().Error("ITS exchange failed", "scenario", "4x2", "seed", 42, "err", err)
		os.Exit(1)
	}

	fmt.Printf("leader: AP%d\n", session.LeaderIdx)
	fmt.Printf("decision: %v (concurrent=%v, SDA=%v)\n",
		session.Outcome.Kind, session.Concurrent, session.Outcome.SDA)
	fmt.Printf("control overhead: %d bytes across 3 ITS frames\n", session.ControlBytes)

	tput := pair.MeasuredThroughputs(session)
	fmt.Printf("measured on true channels: client1 %.1f Mb/s, client2 %.1f Mb/s (aggregate %.1f)\n",
		tput[0]/1e6, tput[1]/1e6, (tput[0]+tput[1])/1e6)

	// Reference: what would stock CSMA (beamforming, equal power, taking
	// turns) have delivered on the same channels?
	ev := copa.NewEvaluator(dep, copa.DefaultImpairments(), 7)
	csma, err := ev.EvaluateCSMA()
	if err != nil {
		copa.Logger().Error("CSMA evaluation failed", "scenario", "4x2", "scheme", "CSMA", "seed", 42, "err", err)
		os.Exit(1)
	}
	fmt.Printf("CSMA baseline:             client1 %.1f Mb/s, client2 %.1f Mb/s (aggregate %.1f)\n",
		csma.PerClient[0]/1e6, csma.PerClient[1]/1e6, csma.Aggregate()/1e6)
}
