// PHY validation: push random frames through the bit-true 802.11 baseband
// (scrambler → convolutional encoder → puncturing → interleaver → QAM →
// AWGN → soft demap → Viterbi) and compare the measured raw and coded BER
// against the analytic models the testbed's throughput predictions use.
// If the two columns track each other, every Mb/s figure in the paper
// reproduction rests on bit-level ground truth.
package main

import (
	"fmt"
	"math"

	"copa/internal/ofdm"
	"copa/internal/phy"
	"copa/internal/rng"
)

func main() {
	src := rng.New(1)
	cases := []struct {
		mcs  ofdm.MCS
		snrs []float64
	}{
		{ofdm.Table()[1], []float64{2, 4, 6, 8}},     // QPSK 1/2
		{ofdm.Table()[4], []float64{10, 12, 14, 16}}, // 16-QAM 3/4
		{ofdm.Table()[7], []float64{16, 18, 20, 22}}, // 64-QAM 5/6
	}
	fmt.Println("bit-true 802.11 chain vs analytic BER model")
	fmt.Println("MCS              SNR(dB)   raw meas    raw model   coded meas  coded model(bound)")
	for _, c := range cases {
		for _, snrDB := range c.snrs {
			sinr := math.Pow(10, snrDB/10)
			res, err := phy.SimulateLink(src.Split(uint64(c.mcs.Index*100)+uint64(snrDB)), c.mcs, sinr, 200)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			rawModel := ofdm.UncodedBER(c.mcs.Modulation, sinr)
			codedModel := ofdm.CodedBER(c.mcs.CodeRate, rawModel)
			fmt.Printf("%-15s  %5.0f    %9.2e   %9.2e   %9.2e   %9.2e\n",
				c.mcs, snrDB, res.RawBER(), rawModel, res.BER(), codedModel)
		}
	}
	fmt.Println("\n(the union bound is an upper bound: measured coded BER should sit at or below it)")
}
