// Mobility: how fast can the environment change before COPA's CSI goes
// stale? The paper refreshes CSI once per coherence time (28 ms at
// 4 km/h, 112 ms at 1 km/h; §3.1) — this example runs the full protocol
// over simulated time with drifting channels and shows the throughput
// cost of refreshing too rarely, and the overhead cost of refreshing too
// often.
package main

import (
	"fmt"
	"os"
	"time"

	"copa"
)

func main() {
	fmt.Println("walking-speed sweep (CSI refreshed once per coherence time):")
	fmt.Println("  speed      coherence   aggregate   concurrent")
	for _, env := range []struct {
		name  string
		speed float64 // m/s
	}{
		{"static", 0},
		{"1 km/h", 1000.0 / 3600},
		{"4 km/h", 4000.0 / 3600},
	} {
		tc := copa.CoherenceTime(env.speed)
		coherence := time.Duration(0)
		refresh := 100 * time.Millisecond
		if env.speed > 0 {
			coherence = time.Duration(tc * float64(time.Second))
			refresh = coherence
		}
		res := runOne(1, coherence, refresh)
		tcLabel := "∞"
		if coherence > 0 {
			tcLabel = coherence.Round(time.Millisecond).String()
		}
		fmt.Printf("  %-9s  %-9s  %6.1f Mb/s   %3.0f%%\n",
			env.name, tcLabel, res.Aggregate()/1e6, res.ConcurrentFraction*100)
	}

	fmt.Println("\nrefresh-interval sweep at 4 km/h (coherence ≈ 28 ms):")
	fmt.Println("  refresh     aggregate")
	tc := time.Duration(copa.CoherenceTime(4000.0/3600) * float64(time.Second))
	for _, refresh := range []time.Duration{
		12 * time.Millisecond, tc, 4 * tc, 16 * tc,
	} {
		res := runOne(2, tc, refresh)
		fmt.Printf("  %-9s  %6.1f Mb/s\n", refresh.Round(time.Millisecond), res.Aggregate()/1e6)
	}
	fmt.Println("\n(too-rare refreshes transmit on stale CSI; too-frequent ones pay ITS overhead)")
}

func runOne(seed int64, coherence, refresh time.Duration) copa.ScheduleResult {
	dep := copa.NewDeployment(seed, copa.Scenario4x2)
	pair := copa.NewPair(dep, copa.DefaultImpairments(), refresh, copa.ModeMax, seed+100)
	res, err := pair.RunSchedule(copa.ScheduleConfig{
		Duration:        600 * time.Millisecond,
		Coherence:       coherence,
		RefreshInterval: refresh,
	})
	if err != nil {
		copa.Logger().Error("schedule failed", "scenario", "4x2", "seed", seed,
			"coherence", coherence, "refresh", refresh, "err", err)
		os.Exit(1)
	}
	return res
}
