// Overconstrained nulling walk-through (§3.4): two 3-antenna APs with
// 2-antenna clients cannot both send two streams and null completely —
// the nullspace is one dimension short. COPA's remedy is to shut down one
// receive antenna (SDA) at the follower's client, restoring enough
// degrees of freedom. This example shows the failure, the fix, and the
// resulting strategy decision.
package main

import (
	"errors"
	"fmt"
	"os"

	"copa"
)

// fail logs an error with the example's common keys and exits non-zero.
func fail(msg string, err error) {
	copa.Logger().Error(msg, "scenario", "3x2", "seed", 5, "err", err)
	os.Exit(1)
}

func main() {
	src := copa.NewRand(5)
	dep := copa.NewDeployment(5, copa.Scenario3x2)
	imp := copa.DefaultImpairments()
	fmt.Printf("topology: %s\n\n", dep)

	est22 := imp.EstimateCSI(src.Split(2), dep.H[1][1]) // AP2 → its client
	est21 := imp.EstimateCSI(src.Split(3), dep.H[1][0]) // AP2 → other client

	// Attempt the full-rank configuration: 2 streams while nulling at
	// both antennas of the other client. 3 TX antennas − 2 victim
	// antennas leave a 1-dimensional nullspace: overconstrained.
	_, err := copa.Nulling(est22, est21, 2)
	switch {
	case errors.Is(err, copa.ErrOverconstrained):
		fmt.Println("full-rank nulling: OVERCONSTRAINED (as §3.4 predicts)")
		fmt.Printf("  %v\n\n", err)
	case err == nil:
		fail("unexpectedly feasible — the cross channel must be rank-deficient", nil)
	default:
		fail("nulling failed", err)
	}

	// One stream fits inside the 1-dim nullspace…
	if _, err := copa.Nulling(est22, est21, 1); err != nil {
		fail("single-stream nulling failed", err)
	}
	fmt.Println("1 stream + full nulling: feasible (but halves AP2's rate)")

	// …and SDA restores 2-stream operation for the *leader* while the
	// follower sends 1 stream: shut the victim's weaker antenna.
	reduced := est21.WithoutRxAntenna(1)
	if _, err := copa.Nulling(est22, reduced, 2); err != nil {
		fail("nulling after SDA failed", err)
	}
	fmt.Println("2 streams, nulling at the client's remaining antenna after SDA: feasible")
	fmt.Printf("  nullspace grew from %d to %d dimensions\n\n",
		copa.NullingDOF(3, 2), copa.NullingDOF(3, 1))

	// Let the full evaluator work through the strategies and decide.
	ev := copa.NewEvaluator(dep, imp, 11)
	outs, err := ev.EvaluateAll()
	if err != nil {
		fail("strategy evaluation failed", err)
	}
	fmt.Println("strategy evaluation (aggregate, measured on true channels):")
	for _, k := range []copa.StrategyKind{copa.KindCSMA, copa.KindCOPASeq, copa.KindNull, copa.KindConcBF, copa.KindConcNull} {
		o, ok := outs[k]
		if !ok {
			continue
		}
		sda := ""
		if o.SDA {
			sda = "  (antenna shut down)"
		}
		fmt.Printf("  %-9v %6.1f Mb/s%s\n", k, o.Aggregate()/1e6, sda)
	}
	choice := copa.Select(copa.ModeFair, outs)
	fmt.Printf("\nCOPA fair picks: %v → %.1f Mb/s aggregate\n", choice.Kind, choice.Aggregate()/1e6)
}
