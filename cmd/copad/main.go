// Command copad runs one COPA AP as a live daemon: the ITS exchange
// crosses real UDP sockets instead of the simulator's in-memory medium.
// Start one process per AP — a leader and a follower — and they negotiate
// a power-allocation strategy exactly as the simulated pair does, with
// airtime-derived timeouts, bounded retries, and CSMA fallback when the
// control channel is too lossy.
//
// Both processes must share -seed and -scenario: each deterministically
// rebuilds the same deployment (channels and CSI) and drives its own AP
// over the wire, so only ITS frames cross the network.
//
// Typical two-terminal session:
//
//	copad -listen 127.0.0.1:7701 -peer 127.0.0.1:7702 -lead
//	copad -listen 127.0.0.1:7702 -peer 127.0.0.1:7701
//
// Add -loss 0.5 to either side to inject seeded frame loss on top of the
// socket; at -loss 1 the exchange exhausts its retries and exits 0
// reporting the CSMA fallback.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"copa/internal/channel"
	"copa/internal/cliflags"
	"copa/internal/core"
	"copa/internal/mac"
	"copa/internal/medium"
	"copa/internal/obs"
	"copa/internal/rng"
	"copa/internal/strategy"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("copad", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7701", "UDP host:port this AP listens on")
	peer := fs.String("peer", "127.0.0.1:7702", "UDP host:port of the other AP")
	lead := fs.Bool("lead", false, "run the leader role (AP 0); the peer follows (AP 1)")
	seed := cliflags.Seed(fs, 1)
	scenario := cliflags.Scenario(fs, "4x2", "antenna scenario: 1x1, 4x2, 3x2 (both processes must match)")
	mode := cliflags.Mode(fs, "max", "leader selection mode: max or fair")
	airtimeUS := fs.Uint("airtime-us", 4000, "announced TXOP airtime in µs")
	retries := fs.Int("retries", 4, "attempt budget per exchange leg")
	loss := fs.Float64("loss", 0, "injected control-frame loss probability on this side")
	burst := fs.Float64("burst", 1, "mean loss-burst length in frames (>1 enables Gilbert–Elliott)")
	wait := fs.Duration("wait", 10*time.Second, "follower: how long to wait for the leader's INIT")
	legTimeout := fs.Duration("leg-timeout", 250*time.Millisecond, "per-leg timeout floor over real sockets")
	dbg := cliflags.Debug(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopDebug, err := dbg.Start()
	if err != nil {
		obs.Logger().Error("debug server failed", "addr", dbg.Addr, "err", err)
		return 1
	}
	defer stopDebug()
	logger := obs.Logger()
	sc, m := *scenario, *mode

	// Rebuild the shared deployment: same seed → same channels, same CSI
	// caches on both sides. The -lead process drives AP 0.
	src := rng.New(*seed)
	dep := channel.NewDeployment(src.Split(1), sc)
	pair := core.NewPair(dep, channel.DefaultImpairments(), strategy.DefaultCoherence, m, src.Split(2))
	pair.MeasureCSI()
	self, other := 0, 1
	if !*lead {
		self, other = 1, 0
	}
	ap := pair.AP[self]

	udp, err := medium.NewUDP(*listen)
	if err != nil {
		logger.Error("listen failed", "err", err)
		return 1
	}
	defer udp.Close()
	if err := udp.AddPeer(pair.AP[other].Addr, *peer); err != nil {
		logger.Error("bad peer", "err", err)
		return 1
	}
	var med medium.Medium = udp
	if *loss > 0 || *burst > 1 {
		med = medium.NewFaulty(udp, medium.Config{Loss: *loss, MeanBurst: *burst}, rng.New(*seed+0x10AD))
		fmt.Fprintf(out, "injecting loss=%.0f%% burst=%.1f on top of UDP\n", *loss*100, *burst)
	}

	pol := core.DefaultRetryPolicy()
	pol.MaxTries = *retries
	pol.TimeoutFloor = *legTimeout

	role := "follower"
	if *lead {
		role = "leader"
	}
	fmt.Fprintf(out, "copad %s: AP %v on %s, peer %v at %s, scenario %s, seed %d\n",
		role, ap.Addr, udp.LocalAddr(), pair.AP[other].Addr, *peer, sc.Name, *seed)

	ctx := context.Background()
	if *lead {
		dec, stats, err := ap.LeadExchange(ctx, med, pair.AP[other].Addr, uint32(*airtimeUS), 0, pol)
		if err != nil {
			return report(out, logger, stats, err)
		}
		fmt.Fprintf(out, "exchange complete: %d control bytes, %d retries\n", stats.ControlBytes, stats.Retries)
		printTrace(out)
		printOutcome(out, "negotiated", dec.Outcome)
		return 0
	}

	ack, tx, stats, err := ap.FollowExchange(ctx, med, *wait, 0, pol)
	if err != nil {
		return report(out, logger, stats, err)
	}
	fmt.Fprintf(out, "exchange complete: %d control bytes, %d retries\n", stats.ControlBytes, stats.Retries)
	printTrace(out)
	verdict := "sequential (defer this TXOP, transmit solo next turn)"
	if ack.Decision == mac.DecideConcurrent {
		verdict = "concurrent (transmit the leader's precoder and powers now)"
	}
	fmt.Fprintf(out, "verdict: %s\n", verdict)
	if tx != nil {
		fmt.Fprintf(out, "follower tx: %d mW total across subcarriers\n", int(tx.TotalPowerMW()))
	}
	return 0
}

// printTrace names the exchange's trace, if one was recorded, so the
// operator can correlate the two processes' -trace-out dumps (the
// leader's trace ID crosses the air inside the INIT frame).
func printTrace(out *os.File) {
	for _, s := range obs.Tracing().Recent(0) {
		if s.Trace != "" && (s.Name == "its.exchange" || s.Name == "its.follow") {
			fmt.Fprintf(out, "trace: %s\n", s.Trace)
			return
		}
	}
}

// report prints a failed exchange's outcome. A CSMA fallback is a clean
// exit (the protocol degraded as designed); anything else is an error.
func report(out *os.File, logger interface {
	Error(msg string, args ...any)
}, stats core.ExchangeStats, err error) int {
	if errors.Is(err, core.ErrFallback) {
		fmt.Fprintf(out, "CSMA fallback after %d retries (cause: %v): no strategy negotiated — reverting to stock 802.11 for this coherence time\n",
			stats.Retries, stats.Cause)
		return 0
	}
	logger.Error("exchange failed", "err", err, "cause", stats.Cause)
	return 1
}

func printOutcome(out *os.File, label string, o strategy.Outcome) {
	kind := "sequential"
	if o.Concurrent {
		kind = "concurrent"
	}
	fmt.Fprintf(out, "%s strategy: %v (%s, SDA=%v)\n", label, o.Kind, kind, o.SDA)
	fmt.Fprintf(out, "predicted throughput: client1 %.1f Mb/s, client2 %.1f Mb/s (aggregate %.1f)\n",
		o.Predicted[0]/1e6, o.Predicted[1]/1e6, (o.Predicted[0]+o.Predicted[1])/1e6)
}
