package main

import (
	"net"
	"os"
	"strings"
	"testing"
)

// capture runs the CLI with output to a temp file and returns exit code
// plus everything printed.
func capture(t *testing.T, args []string) (int, string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "copad-out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	code := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

// freePort reserves an ephemeral UDP port and releases it for the test.
func freePort(t *testing.T) string {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := conn.LocalAddr().String()
	conn.Close()
	return addr
}

// TestFollowerWithNoLeaderFallsBackCleanly is the acceptance check for
// the 100%-effective-loss path: a follower that never hears an INIT must
// exit 0 and report the CSMA fallback, not crash or hang.
func TestFollowerWithNoLeaderFallsBackCleanly(t *testing.T) {
	code, out := capture(t, []string{
		"-listen", "127.0.0.1:0", "-peer", "127.0.0.1:1",
		"-wait", "300ms", "-leg-timeout", "50ms", "-seed", "1",
	})
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "CSMA fallback") {
		t.Fatalf("output does not report the fallback:\n%s", out)
	}
}

// TestLeaderAtTotalLossFallsBackCleanly: a leader whose every frame is
// dropped exhausts its retries and exits 0 reporting the fallback.
func TestLeaderAtTotalLossFallsBackCleanly(t *testing.T) {
	code, out := capture(t, []string{
		"-lead", "-listen", "127.0.0.1:0", "-peer", "127.0.0.1:1",
		"-loss", "1", "-leg-timeout", "30ms", "-seed", "1",
	})
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "CSMA fallback") || !strings.Contains(out, "timeout") {
		t.Fatalf("output does not attribute the fallback:\n%s", out)
	}
}

// TestTwoProcessExchangeOverUDP runs both roles in-process over real
// loopback sockets — the two-terminal demo — and requires both to agree
// on a negotiated strategy.
func TestTwoProcessExchangeOverUDP(t *testing.T) {
	leadAddr, folAddr := freePort(t), freePort(t)

	type result struct {
		code int
		out  string
	}
	folDone := make(chan result, 1)
	go func() {
		code, out := capture(t, []string{
			"-listen", folAddr, "-peer", leadAddr,
			"-wait", "5s", "-leg-timeout", "250ms", "-seed", "7",
		})
		folDone <- result{code, out}
	}()

	code, out := capture(t, []string{
		"-lead", "-listen", leadAddr, "-peer", folAddr,
		"-leg-timeout", "250ms", "-seed", "7",
	})
	if code != 0 {
		t.Fatalf("leader exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "negotiated strategy") {
		t.Fatalf("leader printed no strategy:\n%s", out)
	}

	fr := <-folDone
	if fr.code != 0 {
		t.Fatalf("follower exit = %d\n%s", fr.code, fr.out)
	}
	if !strings.Contains(fr.out, "verdict:") {
		t.Fatalf("follower printed no verdict:\n%s", fr.out)
	}
	// The verdict kinds must agree.
	leadConc := strings.Contains(out, "(concurrent")
	folConc := strings.Contains(fr.out, "concurrent (transmit")
	if leadConc != folConc {
		t.Fatalf("verdict mismatch:\nleader: %s\nfollower: %s", out, fr.out)
	}
}

// TestBadFlagsExitTwo pins the usage-error paths.
func TestBadFlagsExitTwo(t *testing.T) {
	if code, _ := capture(t, []string{"-scenario", "9x9"}); code != 2 {
		t.Errorf("bad scenario exit = %d, want 2", code)
	}
	if code, _ := capture(t, []string{"-mode", "greedy"}); code != 2 {
		t.Errorf("bad mode exit = %d, want 2", code)
	}
}
