// Command copaload is the front-tier load tester: it drives mixed-
// priority allocation traffic at one or more targets (a coparouter, or
// copaserve directly), measures client-side latency quantiles, and
// reports a JSON summary on stdout. The exit code is the assertion:
// non-zero if any interactive request failed — shed (503) is not
// failure, it is the admission contract working; anything else
// non-200 is.
//
// With -canon-out, copaload instead dumps canonical responses: each
// distinct key is POSTed twice to the first target and the second
// (cached) response's exact bytes are appended to the file, one line
// per key. Two such dumps — one through a router, one direct to a
// single copaserve — must be byte-identical, which is the cmp at the
// heart of scripts/router_smoke.sh.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"copa/internal/api"
	"copa/internal/cliflags"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

// classReport is one priority class's request accounting.
type classReport struct {
	Sent   int `json:"sent"`
	OK     int `json:"ok"`
	Cached int `json:"cached"`
	Shed   int `json:"shed"`
	Failed int `json:"failed"`
}

// report is the JSON summary copaload prints.
type report struct {
	Targets     []string    `json:"targets"`
	Requests    int         `json:"requests"`
	Interactive classReport `json:"interactive"`
	Batch       classReport `json:"batch"`
	LatencyMS   struct {
		P50 float64 `json:"p50"`
		P95 float64 `json:"p95"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	DurationMS float64 `json:"duration_ms"`
	RPS        float64 `json:"rps"`
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("copaload", flag.ContinueOnError)
	n := fs.Int("n", 200, "total requests to send")
	clients := fs.Int("clients", 4, "concurrent client goroutines")
	batchFraction := fs.Float64("batch-fraction", 0.25, "fraction of clients sending batch-class traffic")
	distinct := fs.Int("distinct", 16, "distinct request keys (seeds) to cycle; repeats exercise the caches")
	scenario := fs.String("scenario", "4x2", "scenario name sent in every request")
	mode := fs.String("mode", "max", "selection mode sent in every request")
	binary := fs.Bool("binary", false, "use the compact binary codec instead of JSON")
	canonOut := fs.String("canon-out", "", "dump mode: write each distinct key's cached response bytes to this file and exit")
	rf := cliflags.Router(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := rf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *n < 1 || *clients < 1 || *distinct < 1 || *batchFraction < 0 || *batchFraction > 1 {
		fmt.Fprintln(os.Stderr, "copaload: -n, -clients and -distinct must be ≥ 1 and -batch-fraction in [0,1]")
		return 2
	}

	body := func(seed int) ([]byte, string, error) {
		ar := api.AllocateRequest{Scenario: *scenario, Seed: int64(seed), Mode: *mode}
		if *binary {
			b, err := api.EncodeRequestBinary(ar)
			return b, api.ContentTypeBinary, err
		}
		b, err := json.Marshal(ar)
		return b, api.ContentTypeJSON, err
	}

	if *canonOut != "" {
		return dumpCanonical(rf.Backends[0], *canonOut, *distinct, body)
	}
	return loadTest(out, rf, *n, *clients, *batchFraction, *distinct, body)
}

// post sends one allocation and returns the status, response bytes and
// whether the server marked the result cached.
func post(client *http.Client, target string, body []byte, contentType, priorityHeader, class string) (int, []byte, bool, error) {
	req, err := http.NewRequest(http.MethodPost, target+"/v1/allocate", bytes.NewReader(body))
	if err != nil {
		return 0, nil, false, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set("Accept", contentType)
	if class != "" {
		req.Header.Set(priorityHeader, class)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, false, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, false, err
	}
	cached := false
	if resp.StatusCode == http.StatusOK {
		if contentType == api.ContentTypeBinary {
			if br, err := api.DecodeResponseBinary(data); err == nil {
				cached = br.Cached
			}
		} else {
			var ar api.AllocateResponse
			if err := json.Unmarshal(data, &ar); err == nil {
				cached = ar.Cached
			}
		}
	}
	return resp.StatusCode, data, cached, nil
}

// dumpCanonical POSTs every distinct key twice to one target and
// writes the second — cached, hence identically reproducible —
// response's bytes to path, one line per key.
func dumpCanonical(target, path string, distinct int, body func(int) ([]byte, string, error)) int {
	client := &http.Client{Timeout: 60 * time.Second}
	var buf bytes.Buffer
	for seed := 0; seed < distinct; seed++ {
		b, ct, err := body(seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "copaload: encode seed %d: %v\n", seed, err)
			return 1
		}
		var data []byte
		for i := 0; i < 2; i++ {
			status, d, _, err := post(client, target, b, ct, "", "")
			if err != nil {
				fmt.Fprintf(os.Stderr, "copaload: seed %d: %v\n", seed, err)
				return 1
			}
			if status != http.StatusOK {
				fmt.Fprintf(os.Stderr, "copaload: seed %d: status %d: %s\n", seed, status, d)
				return 1
			}
			data = d
		}
		buf.Write(data)
		if len(data) == 0 || data[len(data)-1] != '\n' {
			buf.WriteByte('\n') // JSON responses already end with one; binary does not
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "copaload: %v\n", err)
		return 1
	}
	return 0
}

func loadTest(out io.Writer, rf *cliflags.RouterFlags, n, clients int, batchFraction float64, distinct int, body func(int) ([]byte, string, error)) int {
	var (
		mu        sync.Mutex
		latencies []float64 // ms
		inter     classReport
		batch     classReport
	)
	batchClients := int(batchFraction * float64(clients))
	perClient := n / clients
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		extra := 0
		if c < n%clients {
			extra = 1 // spread the remainder so exactly n requests go out
		}
		wg.Add(1)
		go func(c, count int) {
			defer wg.Done()
			client := &http.Client{Timeout: 60 * time.Second}
			class := ""
			if c < batchClients {
				class = "batch"
			}
			target := rf.Backends[c%len(rf.Backends)]
			for i := 0; i < count; i++ {
				b, ct, err := body((c*perClient + i) % distinct)
				if err != nil {
					fmt.Fprintf(os.Stderr, "copaload: encode: %v\n", err)
					return
				}
				t0 := time.Now()
				status, _, cached, err := post(client, target, b, ct, rf.PriorityHeader, class)
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				mu.Lock()
				cr := &inter
				if class == "batch" {
					cr = &batch
				}
				cr.Sent++
				switch {
				case err != nil:
					cr.Failed++
				case status == http.StatusOK:
					cr.OK++
					if cached {
						cr.Cached++
					}
					latencies = append(latencies, ms)
				case status == http.StatusServiceUnavailable:
					cr.Shed++
				default:
					cr.Failed++
				}
				mu.Unlock()
			}
		}(c, perClient+extra)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := report{Targets: rf.Backends, Requests: inter.Sent + batch.Sent, Interactive: inter, Batch: batch}
	rep.DurationMS = float64(elapsed) / float64(time.Millisecond)
	if rep.DurationMS > 0 {
		rep.RPS = float64(rep.Requests) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		q := func(p float64) float64 { return latencies[int(p*float64(len(latencies)-1))] }
		rep.LatencyMS.P50 = q(0.50)
		rep.LatencyMS.P95 = q(0.95)
		rep.LatencyMS.P99 = q(0.99)
		rep.LatencyMS.Max = latencies[len(latencies)-1]
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "copaload: %v\n", err)
		return 1
	}
	if inter.Failed > 0 {
		fmt.Fprintf(os.Stderr, "copaload: %d interactive requests failed\n", inter.Failed)
		return 1
	}
	return 0
}
