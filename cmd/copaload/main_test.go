package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"copa/internal/api"
	"copa/internal/serve"
)

func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Config{Workers: 1})
	ts := httptest.NewServer(api.NewHandler(srv))
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func TestLoadReportAndExitCode(t *testing.T) {
	ts := newBackend(t)
	var out bytes.Buffer
	code := run([]string{
		"-backends", ts.URL,
		"-n", "40", "-clients", "4", "-distinct", "8", "-batch-fraction", "0.25",
	}, &out)
	if code != 0 {
		t.Fatalf("exit = %d against a healthy backend\n%s", code, out.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Requests != 40 {
		t.Errorf("requests = %d, want 40", rep.Requests)
	}
	if rep.Interactive.OK == 0 || rep.Batch.OK == 0 {
		t.Errorf("both classes should succeed: %+v %+v", rep.Interactive, rep.Batch)
	}
	if rep.Interactive.Failed != 0 || rep.Batch.Failed != 0 {
		t.Errorf("unexpected failures: %+v %+v", rep.Interactive, rep.Batch)
	}
	if rep.Interactive.Cached == 0 {
		t.Error("cycling 8 keys over 30 interactive requests must hit the cache")
	}
	if rep.LatencyMS.P99 <= 0 || rep.RPS <= 0 {
		t.Errorf("latency/rps not reported: %+v", rep.LatencyMS)
	}
}

func TestLoadFailsOnDeadTarget(t *testing.T) {
	ts := newBackend(t)
	ts.Close() // connection refused
	var out bytes.Buffer
	if code := run([]string{"-backends", ts.URL, "-n", "4", "-clients", "1"}, &out); code != 1 {
		t.Fatalf("exit = %d against a dead target, want 1", code)
	}
}

// TestCanonicalDumpByteIdentical: two dumps of the same key space from
// two independent backends must produce identical files — the
// determinism the router smoke test's cmp relies on.
func TestCanonicalDumpByteIdentical(t *testing.T) {
	a, b := newBackend(t), newBackend(t)
	dir := t.TempDir()
	fileA, fileB := filepath.Join(dir, "a"), filepath.Join(dir, "b")

	for target, path := range map[string]string{a.URL: fileA, b.URL: fileB} {
		var out bytes.Buffer
		if code := run([]string{"-backends", target, "-canon-out", path, "-distinct", "6"}, &out); code != 0 {
			t.Fatalf("canon dump exit = %d\n%s", code, out.String())
		}
	}
	da, err := os.ReadFile(fileA)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(fileB)
	if err != nil {
		t.Fatal(err)
	}
	if len(da) == 0 || !bytes.Equal(da, db) {
		t.Errorf("canonical dumps differ between identical backends (len %d vs %d)", len(da), len(db))
	}
	// Every line is a cached response.
	for i, line := range bytes.Split(bytes.TrimSuffix(da, []byte("\n")), []byte("\n")) {
		var ar api.AllocateResponse
		if err := json.Unmarshal(line, &ar); err != nil {
			t.Fatalf("line %d is not a response: %v", i, err)
		}
		if !ar.Cached {
			t.Errorf("line %d is not the cached (second) response", i)
		}
	}
}

func TestBinaryCodecEndToEnd(t *testing.T) {
	ts := newBackend(t)
	var out bytes.Buffer
	code := run([]string{"-backends", ts.URL, "-n", "8", "-clients", "2", "-binary"}, &out)
	if code != 0 {
		t.Fatalf("binary load exit = %d\n%s", code, out.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Interactive.OK+rep.Batch.OK != 8 {
		t.Errorf("binary codec requests failed: %+v %+v", rep.Interactive, rep.Batch)
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	for name, args := range map[string][]string{
		"no targets":    {},
		"bad fraction":  {"-backends", "http://a:1", "-batch-fraction", "2"},
		"zero requests": {"-backends", "http://a:1", "-n", "0"},
	} {
		if code := run(args, &out); code != 2 {
			t.Errorf("%s: exit = %d, want 2", name, code)
		}
	}
}
