// Command copamac explores COPA's MAC layer: the Table 1 overhead model
// for arbitrary coherence times, and the multi-station DCF fairness
// simulation including the post-ITS deference window (§3.1).
//
// Usage:
//
//	copamac -coherence 4ms,30ms,1s
//	copamac -dcf -stations 4 -txops 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"copa/internal/channel"
	"copa/internal/core"
	"copa/internal/mac"
	"copa/internal/rng"
	"copa/internal/strategy"
)

func main() {
	coherences := flag.String("coherence", "4ms,30ms,1s", "comma-separated coherence times for the overhead table")
	dcf := flag.Bool("dcf", false, "run the slotted DCF fairness simulation instead")
	cluster := flag.Bool("cluster", false, "run the full-protocol cluster fairness simulation instead")
	stations := flag.Int("stations", 3, "number of contending stations/pairs")
	txops := flag.Int("txops", 20000, "TXOPs to simulate (DCF mode)")
	rounds := flag.Int("rounds", 40, "contention rounds (cluster mode)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if *dcf {
		runDCF(*stations, *txops, *seed)
		return
	}
	if *cluster {
		runCluster(*stations, *rounds, *seed)
		return
	}

	var tcs []time.Duration
	for _, tok := range strings.Split(*coherences, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(tok))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad coherence time %q: %v\n", tok, err)
			os.Exit(1)
		}
		tcs = append(tcs, d)
	}
	m := mac.DefaultOverheadModel()
	fmt.Println("coherence   COPA-Conc  COPA-Seq  CSMA-CTS  CSMA-RTS/CTS")
	for _, r := range m.Table1(tcs...) {
		fmt.Printf("%9s   %8.2f%%  %7.2f%%  %7.2f%%  %11.2f%%\n",
			r.Coherence, r.COPAConc*100, r.COPASeq*100, r.CSMACTS*100, r.CSMARTS*100)
	}
}

func runCluster(pairs, rounds int, seed int64) {
	fmt.Printf("cluster of %d COPA pairs (4x2), %d contention rounds, full ITS protocol\n\n", pairs, rounds)
	for _, cfg := range []struct {
		name      string
		deference bool
	}{
		{"no deference", false},
		{"with §3.1 deference", true},
	} {
		src := rng.New(seed)
		dep, err := channel.NewMultiDeployment(src.Split(1), channel.Scenario4x2, pairs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		c := core.NewCluster(dep, channel.DefaultImpairments(), 30*time.Millisecond, strategy.ModeFair, src.Split(2))
		c.Deference = cfg.deference
		stats, err := c.RunRounds(rounds)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-20s Jain=%.4f concurrent=%.0f%% airtime=", cfg.name, stats.JainIndex, stats.ConcurrentFraction*100)
		for i, a := range stats.AirtimeShare {
			if i > 0 {
				fmt.Print("/")
			}
			fmt.Printf("%.3f", a)
		}
		fmt.Printf("  tput=")
		for i, tp := range stats.MeanTputBps {
			if i > 0 {
				fmt.Print("/")
			}
			fmt.Printf("%.0f", tp/1e6)
		}
		fmt.Println(" Mb/s")
	}
}

func runDCF(stations, txops int, seed int64) {
	fmt.Printf("DCF with %d stations; stations 0,1 form a COPA pair (sequential verdicts)\n\n", stations)
	for _, cfg := range []struct {
		name string
		d    mac.DCF
	}{
		{"plain DCF (no COPA)", mac.DCF{Stations: stations}},
		{"COPA pair, no deference", mac.DCF{Stations: stations, COPAPair: true}},
		{"COPA pair + deference (§3.1)", mac.DCF{Stations: stations, COPAPair: true, Deference: true}},
	} {
		stats := cfg.d.Run(rng.New(seed), txops)
		fmt.Printf("%-30s Jain=%.4f collisions=%.2f%% airtime=", cfg.name, stats.JainIndex, stats.Collisions*100)
		for i, a := range stats.Airtime {
			if i > 0 {
				fmt.Print("/")
			}
			fmt.Printf("%.3f", a)
		}
		fmt.Println()
	}
}
