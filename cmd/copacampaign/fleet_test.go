package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRunFleetEndToEnd drives the full two-role CLI path: a pure
// coordinator (-workers 0, so every unit is evaluated remotely) plus
// one -join worker (same binary, second run() call), output
// byte-identical to the plain in-process run.
func TestRunFleetEndToEnd(t *testing.T) {
	dir := t.TempDir()

	localOut := filepath.Join(dir, "local.json")
	if code := run(campaignArgs("-out", localOut), os.Stdout); code != 0 {
		t.Fatalf("local run exit code %d", code)
	}
	want, err := os.ReadFile(localOut)
	if err != nil {
		t.Fatal(err)
	}

	fleetOut := filepath.Join(dir, "fleet.json")
	addrFile := filepath.Join(dir, "coordinator.url")
	var wg sync.WaitGroup
	wg.Add(1)
	coordCode := -1
	go func() {
		defer wg.Done()
		coordCode = run(campaignArgs(
			"-serve-coordinator", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-workers", "0",
			"-out", fleetOut,
		), os.Stdout)
	}()

	// The -addr-file handshake: poll until the coordinator announces
	// where it bound, exactly as a wrapper script would.
	var base string
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); time.Sleep(10 * time.Millisecond) {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			base = strings.TrimSpace(string(data))
			break
		}
	}
	if base == "" {
		t.Fatal("coordinator never wrote -addr-file")
	}

	if code := run([]string{"-join", base, "-workers", "2", "-q"}, os.Stdout); code != 0 {
		t.Fatalf("worker exit code %d", code)
	}
	wg.Wait()
	if coordCode != 0 {
		t.Fatalf("coordinator exit code %d", coordCode)
	}

	got, err := os.ReadFile(fleetOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fleet CLI output differs from in-process CLI output")
	}
}

func TestRunFleetFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-serve-coordinator", ":0", "-join", "http://x"},
		{"-join", "http://x", "-checkpoint", "c.jsonl"},
		{"-join", "http://x", "-workers", "0"},
		{"-addr-file", "a.url"},
		{"-serve-coordinator", ":0", "-lease-ttl", "0s"},
	}
	for _, args := range cases {
		if code := run(append(campaignArgs(), args...), os.Stdout); code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
}
