package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"copa/internal/campaign"
	"copa/internal/cliflags"
	"copa/internal/fleet"
	"copa/internal/obs"
)

// runFleetCoordinator serves the campaign to fleet workers and blocks
// until every unit is merged, returning the same Result — byte for
// byte — that campaign.Run would have produced in-process.
//
// -workers N > 0 also contributes N local evaluator loops, joined
// through the same HTTP loopback remote workers use: one code path, and
// a single machine still makes progress before anyone runs -join.
// -workers 0 is a pure coordinator.
func runFleetCoordinator(ctx context.Context, spec campaign.Spec, cf *cliflags.CampaignFlags, ff *cliflags.FleetFlags, progressEvery time.Duration, quiet bool) (*campaign.Result, error) {
	opt := fleet.CoordinatorOptions{
		Checkpoint:    cf.Checkpoint,
		Resume:        cf.Resume,
		LeaseTTL:      ff.LeaseTTL,
		ProgressEvery: progressEvery,
	}
	if !quiet {
		opt.OnProgress = func(p campaign.Progress) {
			fmt.Fprintf(os.Stderr, "\rcampaign: %d/%d units", p.Done, p.Total)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	coord, err := fleet.NewCoordinator(ctx, spec, opt)
	if err != nil {
		return nil, err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", ff.Coordinator)
	if err != nil {
		return nil, fmt.Errorf("coordinator listen on %s: %w", ff.Coordinator, err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	obs.Logger().Info("fleet coordinator listening", "url", base, "units", spec.Units())
	if ff.AddrFile != "" {
		if err := os.WriteFile(ff.AddrFile, []byte(base+"\n"), 0o644); err != nil {
			return nil, fmt.Errorf("writing -addr-file: %w", err)
		}
	}

	if cf.Workers > 0 {
		go func() {
			if err := fleet.RunWorker(ctx, base, fleet.WorkerOptions{Parallel: cf.Workers, Name: "local"}); err != nil && ctx.Err() == nil {
				obs.Logger().Error("local fleet worker failed", "err", err)
			}
		}()
	}
	return coord.Wait(ctx)
}

// runFleetWorker joins a coordinator and evaluates until the campaign
// completes. The worker has no spec of its own — it takes the
// coordinator's, refusing on a fingerprint mismatch.
func runFleetWorker(ctx context.Context, cf *cliflags.CampaignFlags, ff *cliflags.FleetFlags) error {
	return fleet.RunWorker(ctx, ff.Join, fleet.WorkerOptions{Parallel: cf.Workers})
}
