package main

import (
	"context"
	"fmt"
	"os"
	"strconv"

	"copa/internal/channel"
	"copa/internal/cliflags"
	"copa/internal/obs"
	"copa/internal/testbed"
)

// runMobility is the -mobility mode: a speed × re-negotiation-rate
// sweep of the drift controller (internal/drift) instead of a scheme
// campaign. Each cell is a full controller run, cheap enough that the
// mode bypasses the checkpoint/fleet engine entirely and always runs
// locally.
func runMobility(ctx context.Context, stdout *os.File, sc channel.Scenario,
	seed int64, topologies int, mob *cliflags.MobilityFlags,
	thresholds, csvDir string, quiet bool) int {
	logger := obs.Logger()
	if err := mob.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "copacampaign: %v\n", err)
		return 2
	}
	cfg := testbed.DefaultMobilityConfig(seed)
	cfg.Topologies = topologies
	cfg.SpeedsMps = mob.Speeds(testbed.DefaultSpeeds())
	cfg.Duration = mob.Duration
	cfg.Step = mob.Step
	cfg.ReassocPerSec = mob.ReassocPerSec
	cfg.ChurnPerSec = mob.ChurnPerSec
	cfg.ThresholdsDB = nil
	for _, f := range splitComma(thresholds) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "copacampaign: -drift-thresholds: bad threshold %q\n", f)
			return 2
		}
		cfg.ThresholdsDB = append(cfg.ThresholdsDB, v)
	}
	if len(cfg.ThresholdsDB) == 0 {
		cfg.ThresholdsDB = []float64{mob.ThresholdDB}
	}

	sweep, err := testbed.RunMobilitySweep(ctx, sc, cfg)
	if err != nil {
		logger.Error("mobility sweep failed", "err", err)
		return 1
	}
	if csvDir != "" {
		if err := sweep.ExportCSV(csvDir); err != nil {
			logger.Error("csv export failed", "dir", csvDir, "err", err)
			return 1
		}
	}
	if !quiet {
		fmt.Fprintf(stdout, "%s mobility sweep: %d topologies, %v per cell\n",
			sc.Name, cfg.Topologies, cfg.Duration)
		fmt.Fprintf(stdout, "  %9s  %9s  %12s  %8s  %7s  %9s  %11s\n",
			"thresh", "speed", "aggregate", "renegs/s", "incr/s", "revoked/s", "delta-share")
		for _, p := range sweep.Points {
			fmt.Fprintf(stdout, "  %6.1f dB  %5.1f m/s  %7.1f Mb/s  %8.2f  %7.2f  %9.2f  %10.1f%%\n",
				p.ThresholdDB, p.SpeedMps, p.AggregateBps/1e6,
				p.RenegsPerSec, p.IncrementalPerSec, p.CertRevocationsPerSec, p.DeltaByteShare*100)
		}
	}
	return 0
}
