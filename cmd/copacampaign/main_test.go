package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"copa/internal/campaign"
)

// campaignArgs is the small, fast base invocation the tests share.
func campaignArgs(extra ...string) []string {
	return append([]string{
		"-scenario", "1x1", "-topologies", "4", "-shards", "2",
		"-skip-copa-plus", "-q",
	}, extra...)
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "result.json")
	if code := run(campaignArgs("-out", out, "-csv", dir), os.Stdout); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res campaign.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("output is not a Result: %v", err)
	}
	if res.Spec.Topologies != 4 || res.Units != res.Spec.Units() {
		t.Fatalf("unexpected result shape: %+v", res.Spec)
	}
	if col := res.SchemeColumn("default", 0, campaign.SchemeCOPA); col == nil || col.Moments.N != 4 {
		t.Fatalf("COPA column missing or wrong count: %+v", col)
	}
	if _, err := os.Stat(filepath.Join(dir, "campaign_1x1_summary.csv")); err != nil {
		t.Errorf("csv export missing: %v", err)
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	var outs [][]byte
	for _, workers := range []string{"1", "4"} {
		out := filepath.Join(dir, "w"+workers+".json")
		if code := run(campaignArgs("-workers", workers, "-out", out), os.Stdout); code != 0 {
			t.Fatalf("workers=%s: exit code %d", workers, code)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, data)
	}
	if string(outs[0]) != string(outs[1]) {
		t.Fatal("-workers 1 and -workers 4 produced different bytes")
	}
}

func TestRunSummaryOutput(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	args := []string{"-scenario", "1x1", "-topologies", "2", "-shards", "1", "-skip-copa-plus"}
	if code := run(args, out); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"1x1", "profile default", "CSMA", "COPA", "mean", "median"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q in:\n%s", want, text)
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		campaignArgs("-workers", "0"),
		campaignArgs("-workers", "-3"),
		{"-topologies", "0", "-q"},
		campaignArgs("-shards", "9"), // > topologies
		campaignArgs("-resume"),      // without -checkpoint
		campaignArgs("-profiles", "nonsense"),
	}
	for _, args := range cases {
		if code := run(args, os.Stdout); code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
}

func TestRunCheckpointRefusal(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "c.jsonl")
	if err := os.WriteFile(ckpt, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(campaignArgs("-checkpoint", ckpt), os.Stdout); code != 1 {
		t.Errorf("existing checkpoint without -resume: exit code %d, want 1", code)
	}
}

func TestRunWithCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "c.jsonl")
	out1 := filepath.Join(dir, "a.json")
	out2 := filepath.Join(dir, "b.json")
	if code := run(campaignArgs("-checkpoint", ckpt, "-out", out1), os.Stdout); code != 0 {
		t.Fatalf("first run: exit code %d", code)
	}
	// Resuming the (complete) checkpoint recomputes nothing and emits
	// identical bytes.
	if code := run(campaignArgs("-checkpoint", ckpt, "-resume", "-out", out2), os.Stdout); code != 0 {
		t.Fatalf("resume run: exit code %d", code)
	}
	a, _ := os.ReadFile(out1)
	b, _ := os.ReadFile(out2)
	if string(a) != string(b) {
		t.Fatal("resume produced different bytes")
	}
}

func TestSplitComma(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"default", []string{"default"}},
		{"default,perfect", []string{"default", "perfect"}},
		{"default,", []string{"default"}},
	}
	for _, tc := range cases {
		got := splitComma(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("splitComma(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("splitComma(%q) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
}
