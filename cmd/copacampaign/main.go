// Command copacampaign runs massive scenario campaigns: it shards a
// topology population (optionally crossed with impairment profiles and
// a CSI-age grid) into deterministic work units, evaluates them over a
// worker pool, and aggregates every scheme's throughput into mergeable
// moments + quantile sketches — bounded memory at any population size.
//
// Results are bit-identical for a given -seed regardless of -workers,
// scheduling, or interruption: with -checkpoint the journal records
// each completed unit, and a killed campaign rerun with -resume
// recomputes only the missing units.
//
//	copacampaign -topologies 100000 -checkpoint sweep.jsonl -out sweep.json
//	copacampaign -topologies 100000 -checkpoint sweep.jsonl -resume -out sweep.json
//	copacampaign -topologies 30 -shards 8        # prints the Figs. 10–13 summary
//
// A campaign can also be distributed: -serve-coordinator leases the
// same work units to fleet workers over HTTP (joined with -join) and
// merges their results into output byte-identical to a local run:
//
//	copacampaign -topologies 100000 -serve-coordinator :9400 -out sweep.json
//	copacampaign -join http://host:9400        # on each worker machine
//
// Operational flags mirror copasim: -v debug logging, -debug-addr
// expvar/pprof.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"copa/internal/campaign"
	"copa/internal/cliflags"
	"copa/internal/obs"
	"copa/internal/testbed"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, stdout *os.File) int {
	fs := flag.NewFlagSet("copacampaign", flag.ExitOnError)
	scenario := cliflags.Scenario(fs, "4x2", "antenna scenario: 1x1, 4x2, 3x2")
	seed := cliflags.Seed(fs, 1)
	topologies := fs.Int("topologies", 30, "topology population per grid cell")
	cf := cliflags.Campaign(fs)
	profiles := fs.String("profiles", "default", "comma-separated impairment profiles to sweep (default, perfect)")
	ageBuckets := fs.Int("age-buckets", 1, "CSI-age grid size (bucket a evaluates CSI aged a/n of a coherence time)")
	deltaDB := fs.Float64("interference-delta-db", 0, "scale all cross-channels by this many dB (-10 = Fig. 12)")
	skipPlus := fs.Bool("skip-copa-plus", false, "skip the slow mercury/water-filling (COPA+) variants")
	multi := fs.Bool("multi-decoder", false, "evaluate with per-subcarrier rate selection")
	mobility := fs.Bool("mobility", false, "run the drift-controller mobility sweep (speed × re-negotiation rate) instead of a scheme campaign")
	mob := cliflags.Mobility(fs)
	driftThresholds := fs.String("drift-thresholds", "0.5,1,2", "-mobility: comma-separated drift-detector thresholds (dB) to sweep")
	out := fs.String("out", "", "write the merged aggregates as JSON to this file ('-' for stdout)")
	csvDir := fs.String("csv", "", "directory to write summary/CDF CSVs into")
	quiet := fs.Bool("q", false, "suppress the progress line and summary table")
	progressEvery := fs.Duration("progress-every", 10*time.Second, "interval between progress log lines with units/s and ETA (0 disables)")
	ff := cliflags.Fleet(fs)
	dbg := cliflags.Debug(fs)
	_ = fs.Parse(args)

	logger := obs.Logger()
	stopDebug, err := dbg.Start()
	if err != nil {
		logger.Error("debug server failed", "addr", dbg.Addr, "err", err)
		return 1
	}
	defer stopDebug()

	// -mobility is a self-contained local sweep: each cell is one drift
	// controller run, so the checkpoint/fleet machinery has nothing to
	// shard and is rejected rather than silently ignored.
	if *mobility {
		if ff.Join != "" || ff.Coordinator != "" || cf.Checkpoint != "" || cf.Resume {
			fmt.Fprintln(os.Stderr, "copacampaign: -mobility runs locally; it cannot combine with -join, -serve-coordinator, -checkpoint, or -resume")
			return 2
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return runMobility(ctx, stdout, *scenario, *seed, *topologies, mob, *driftThresholds, *csvDir, *quiet)
	}

	if err := ff.Validate(cf); err != nil {
		fmt.Fprintf(os.Stderr, "copacampaign: %v\n", err)
		return 2
	}

	// Worker mode needs no spec: the coordinator's wins (and the worker
	// refuses a fingerprint mismatch), so local spec flags are ignored.
	if ff.Join != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := runFleetWorker(ctx, cf, ff); err != nil {
			logger.Error("fleet worker failed", "err", err)
			return 1
		}
		return 0
	}

	// -workers 0 under -serve-coordinator is a pure coordinator (all
	// evaluation remote); everywhere else at least one evaluator is
	// required, which Validate enforces.
	vcf := *cf
	if ff.Coordinator != "" && vcf.Workers == 0 {
		vcf.Workers = 1
	}
	if err := vcf.Validate(*topologies); err != nil {
		fmt.Fprintf(os.Stderr, "copacampaign: %v\n", err)
		return 2
	}
	spec := campaign.Spec{
		Seed:                *seed,
		Scenario:            *scenario,
		Topologies:          *topologies,
		Shards:              cf.EffectiveShards(*topologies),
		AgeBuckets:          *ageBuckets,
		InterferenceDeltaDB: *deltaDB,
		SkipCOPAPlus:        *skipPlus,
		MultiDecoder:        *multi,
	}
	for _, name := range splitComma(*profiles) {
		imp, err := cliflags.ParseImpairments(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "copacampaign: %v\n", err)
			return 2
		}
		if name == "" {
			name = "default"
		}
		spec.Profiles = append(spec.Profiles, campaign.Profile{Name: name, Impairments: imp})
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "copacampaign: %v\n", err)
		return 2
	}

	// Ctrl-C / SIGTERM cancels the engine: in-flight units abort,
	// completed ones are already journaled, and the command exits
	// non-zero so a wrapper knows to rerun with -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Root one trace per invocation: campaign.run, its per-unit and
	// checkpoint spans all stitch under this (subject to -trace-sample).
	ctx, rootSpan := obs.StartSpan(ctx, "cli.campaign")

	var res *campaign.Result
	if ff.Coordinator != "" {
		pe := *progressEvery
		if *quiet {
			pe = 0
		}
		res, err = runFleetCoordinator(ctx, spec, cf, ff, pe, *quiet)
	} else {
		opt := campaign.Options{
			Workers:       cf.Workers,
			Checkpoint:    cf.Checkpoint,
			Resume:        cf.Resume,
			ProgressEvery: *progressEvery,
		}
		if *quiet {
			opt.ProgressEvery = 0
		} else {
			opt.OnProgress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\rcampaign: %d/%d units", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		res, err = campaign.Run(ctx, spec, opt)
	}
	rootSpan.EndErr(err)
	if err != nil {
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
		logger.Error("campaign failed", "err", err)
		if cf.Checkpoint != "" && ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "copacampaign: interrupted; rerun with -checkpoint %s -resume to continue\n", cf.Checkpoint)
		}
		return 1
	}

	if *out != "" {
		if err := writeResult(res, *out, stdout); err != nil {
			logger.Error("writing result failed", "path", *out, "err", err)
			return 1
		}
	}
	if *csvDir != "" {
		if err := testbed.ExportCampaignCSV(*csvDir, res); err != nil {
			logger.Error("csv export failed", "dir", *csvDir, "err", err)
			return 1
		}
	}
	if !*quiet {
		printSummary(stdout, res)
	}
	return 0
}

// writeResult serializes the merged aggregates deterministically:
// equal campaigns produce byte-identical files.
func writeResult(res *campaign.Result, path string, stdout *os.File) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// printSummary renders each grid cell the way copasim prints a
// scenario: one line per scheme with mean and sketch quantiles.
func printSummary(w *os.File, res *campaign.Result) {
	for _, prof := range res.Spec.Profiles {
		for age := 0; age < res.Spec.AgeBuckets; age++ {
			fmt.Fprintf(w, "%s (%s, profile %s, age %d/%d) — %d topologies\n",
				res.Spec.Scenario.Name, modeLabel(res.Spec), prof.Name, age, res.Spec.AgeBuckets, res.Spec.Topologies)
			for _, row := range testbed.CampaignSummary(res, prof.Name, age) {
				fmt.Fprintf(w, "  %-10s  mean %6.1f Mb/s   p10 %6.1f   median %6.1f   p90 %6.1f\n",
					row.Scheme, row.MeanBps/1e6, row.P10Bps/1e6, row.MedianBps/1e6, row.P90Bps/1e6)
			}
		}
	}
}

func modeLabel(s campaign.Spec) string {
	if s.MultiDecoder {
		return "multi-decoder"
	}
	return "single-decoder"
}

// splitComma splits a comma-separated list, trimming empties at the
// ends but keeping interior empties (they name the default profile).
func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if len(out) > 1 && out[len(out)-1] == "" {
		out = out[:len(out)-1]
	}
	return out
}
