package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"copa/internal/channel"
	"copa/internal/obs"
	"copa/internal/testbed"
)

// TestDebugSurface is the PR's acceptance check: after one scenario run,
// the -debug-addr surface must expose at least 10 distinct copa.* metrics
// via expvar and answer pprof requests.
func TestDebugSurface(t *testing.T) {
	bound, shutdown, err := obs.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer shutdown()

	cfg := testbed.DefaultConfig(1)
	cfg.Topologies = 3
	cfg.SkipCOPAPlus = true
	if _, err := testbed.RunScenario(context.Background(), channel.Scenario4x2, cfg); err != nil {
		t.Fatalf("RunScenario: %v", err)
	}

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", bound, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var vars map[string]any
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("unmarshal /debug/vars: %v", err)
	}
	distinct := 0
	for name := range vars {
		if strings.HasPrefix(name, "copa.") {
			distinct++
		}
	}
	if distinct < 10 {
		names := make([]string, 0, len(vars))
		for n := range vars {
			names = append(names, n)
		}
		t.Fatalf("want >=10 distinct copa.* expvar metrics, got %d: %v", distinct, names)
	}

	if body := get("/debug/metrics"); !strings.Contains(string(body), "copa.") {
		t.Fatalf("/debug/metrics carries no copa.* entries: %s", body)
	}
	get("/debug/spans")
	get("/debug/pprof/cmdline")
	if body := get("/debug/pprof/goroutine?debug=1"); len(body) == 0 {
		t.Fatal("empty goroutine profile")
	}
}

// TestRunExitCodes exercises the CLI wrapper end to end on a cheap figure.
func TestRunExitCodes(t *testing.T) {
	if code := run([]string{"-fig", "table1"}); code != 0 {
		t.Fatalf("run(-fig table1) = %d, want 0", code)
	}
	if code := run([]string{"-fig", "table1", "-out", t.TempDir()}); code != 0 {
		t.Fatalf("run with -out = %d, want 0", code)
	}
	// An unwritable CSV directory must not crash; export errors are logged.
	csvDir = ""
}
