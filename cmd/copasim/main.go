// Command copasim regenerates the COPA paper's tables and figures on the
// simulated testbed and prints the rows/series the paper reports.
//
// Usage:
//
//	copasim -fig 11                # one figure
//	copasim -fig all -topologies 30
//	copasim -fig headlines         # the §1 claims
//
// Operational flags: -debug-addr serves expvar (/debug/vars), a registry
// snapshot (/debug/metrics), recent spans (/debug/spans) and pprof;
// -cpuprofile/-memprofile/-exec-trace write profiles; -trace-out dumps
// recorded spans as JSON at exit; -v enables debug
// logging.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"syscall"

	"copa/internal/channel"
	"copa/internal/cliflags"
	"copa/internal/obs"
	"copa/internal/strategy"
	"copa/internal/testbed"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("copasim", flag.ExitOnError)
	fig := fs.String("fig", "all", "figure to reproduce: 2,3,4,7,9,10,11,12,13,14,table1,headlines,accuracy,backlog,loss,mobility,all")
	seed := cliflags.Seed(fs, 1)
	topologies := fs.Int("topologies", 30, "number of topologies per scenario")
	lossRate := fs.Float64("loss", 0, "-fig loss: evaluate this single control-frame loss rate instead of the 0–30% sweep")
	burst := fs.Float64("burst", 1, "-fig loss: mean loss-burst length in frames (>1 switches to Gilbert–Elliott bursts)")
	mob := cliflags.Mobility(fs)
	skipPlus := fs.Bool("skip-copa-plus", false, "skip the slow mercury/water-filling (COPA+) variants")
	workers := fs.Int("workers", 0, "bound parallel topology evaluation (0 = GOMAXPROCS)")
	outDir := fs.String("out", "", "directory to also write CSV data files into")
	dbg := cliflags.Debug(fs)
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	execTrace := fs.String("exec-trace", "", "write a runtime execution trace to this file")
	_ = fs.Parse(args)
	// Ctrl-C (or SIGTERM) cancels the context the experiment harness
	// runs under: the current figure aborts between topologies instead
	// of the process dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	csvDir = *outDir
	maxParallel = *workers
	logger := obs.Logger()
	stopDebug, err := dbg.Start()
	if err != nil {
		logger.Error("debug server failed", "addr", dbg.Addr, "err", err)
		return 1
	}
	defer stopDebug()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			logger.Error("cpuprofile failed", "err", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			logger.Error("cpuprofile failed", "err", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *execTrace != "" {
		f, err := os.Create(*execTrace)
		if err != nil {
			logger.Error("exec-trace failed", "err", err)
			return 1
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			logger.Error("exec-trace failed", "err", err)
			return 1
		}
		defer trace.Stop()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			logger.Error("memprofile failed", "err", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			logger.Error("memprofile failed", "err", err)
		}
	}()

	failed := false
	matched := false
	runOne := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		matched = true
		if failed {
			return
		}
		fmt.Printf("\n===== %s =====\n", title(name))
		logger.Debug("reproducing", "figure", name, "seed", *seed, "topologies", *topologies)
		if err := f(); err != nil {
			logger.Error("figure failed", "figure", name, "err", err)
			failed = true
		}
	}

	runOne("2", func() error { printFigure2(*seed); return nil })
	runOne("3", func() error { printFigure3(*seed, *topologies); return nil })
	runOne("4", func() error { printFigure4(*seed); return nil })
	runOne("table1", func() error { printTable1(); return nil })
	runOne("7", func() error { printFigure7(*seed); return nil })
	runOne("9", func() error { printFigure9(*seed, *topologies); return nil })
	runOne("10", func() error {
		return printScenario(ctx, "Figure 10 (1x1)", channel.Scenario1x1, *seed, *topologies, 0, *skipPlus)
	})
	runOne("11", func() error {
		return printScenario(ctx, "Figure 11 (4x2)", channel.Scenario4x2, *seed, *topologies, 0, *skipPlus)
	})
	runOne("12", func() error {
		return printScenario(ctx, "Figure 12 (4x2, interference −10 dB)", channel.Scenario4x2, *seed, *topologies, -10, *skipPlus)
	})
	runOne("13", func() error {
		return printScenario(ctx, "Figure 13 (3x2)", channel.Scenario3x2, *seed, *topologies, 0, *skipPlus)
	})
	runOne("14", func() error { return printFigure14(ctx, *seed, *topologies) })
	runOne("headlines", func() error { return printHeadlines(ctx, *seed, *topologies) })
	runOne("accuracy", func() error { return printAccuracy(ctx, *seed, *topologies) })
	runOne("backlog", func() error { return printBacklog(*seed) })
	runOne("loss", func() error { return printLossSweep(ctx, *seed, *topologies, *lossRate, *burst) })
	runOne("mobility", func() error { return printMobility(ctx, *seed, *topologies, mob) })
	if !matched {
		logger.Error("unknown figure", "fig", *fig)
		fmt.Fprintln(os.Stderr, "valid figures: 2,3,4,7,9,10,11,12,13,14,table1,headlines,accuracy,backlog,loss,mobility,all")
		return 2
	}
	if failed {
		return 1
	}
	return 0
}

// csvDir, when non-empty, receives CSV exports of every figure printed.
var csvDir string

// maxParallel bounds scenario-harness workers (0 = GOMAXPROCS). Worker
// count never changes results — evaluation streams are stateless per
// topology — only wall time.
var maxParallel int

func maybeExport(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv export: %v\n", err)
	}
}

func title(name string) string {
	switch name {
	case "table1":
		return "Table 1: MAC overhead"
	case "headlines":
		return "Headline claims (§1)"
	case "accuracy":
		return "Strategy prediction accuracy (§3.3)"
	case "backlog":
		return "Backlog drain (§3.5)"
	case "loss":
		return "Throughput vs control-frame loss"
	case "mobility":
		return "Realized aggregate throughput vs client speed"
	default:
		return "Figure " + name
	}
}

func printFigure2(seed int64) {
	f := testbed.RunFigure2(seed)
	if csvDir != "" {
		maybeExport(f.ExportCSV(csvDir))
	}
	fmt.Println("subcarrier  ant1(dBm)  ant2(dBm)")
	for k := range f.PowerDBm[0] {
		fmt.Printf("%10d  %9.1f  %9.1f\n", k, f.PowerDBm[0][k], f.PowerDBm[1][k])
	}
}

func printFigure3(seed int64, topologies int) {
	f := testbed.RunFigure3(seed, topologies)
	if csvDir != "" {
		maybeExport(f.ExportCSV(csvDir))
	}
	fmt.Printf("INR reduction : %+6.1f dB (σ %.1f)   [paper: ≈−27 dB]\n", f.INRReductionMeanDB, f.INRReductionStdDB)
	fmt.Printf("SNR reduction : %+6.1f dB (σ %.1f)   [paper: ≈−8 dB]\n", f.SNRReductionMeanDB, f.SNRReductionStdDB)
	fmt.Printf("SINR increase : %+6.1f dB (σ %.1f)   [paper: ≈+18 dB]\n", f.SINRIncreaseMeanDB, f.SINRIncreaseStdDB)
}

func printFigure4(seed int64) {
	f := testbed.RunFigure4(seed)
	if csvDir != "" {
		maybeExport(f.ExportCSV(csvDir))
	}
	fmt.Println("subcarrier  SNR-BF  SNR-Null  SINR-Null  (dB)")
	for k := range f.SNRBFDB {
		fmt.Printf("%10d  %6.1f  %8.1f  %9.1f\n", k, f.SNRBFDB[k], f.SNRNullDB[k], f.SINRNullDB[k])
	}
}

func printTable1() {
	rows := testbed.Table1()
	if csvDir != "" {
		maybeExport(testbed.ExportTable1CSV(csvDir))
	}
	fmt.Println("coherence   COPA-Conc  COPA-Seq  CSMA-CTS  CSMA-RTS/CTS   (% of TXOP)")
	for _, r := range rows {
		fmt.Printf("%9s   %8.1f%%  %7.1f%%  %7.1f%%  %11.1f%%\n",
			r.Coherence, r.COPAConc*100, r.COPASeq*100, r.CSMACTS*100, r.CSMARTS*100)
	}
	fmt.Println("paper @4ms: 9.3 / 7.7 / 2.7 / 3.7 · @30ms: 5.1 / 3.5 · @1000ms: 4.5 / 2.8")
}

func printFigure7(seed int64) {
	f := testbed.RunFigure7(seed)
	if csvDir != "" && len(f.BERCOPA) > 0 {
		maybeExport(f.ExportCSV(csvDir))
	}
	if len(f.BERCOPA) == 0 {
		fmt.Println("(nulling infeasible on this draw; try another seed)")
		return
	}
	fmt.Printf("COPA: %s → %.1f Mb/s   NoPA: %s → %.1f Mb/s\n", f.COPAMCS, f.COPAMbps, f.NoPAMCS, f.NoPAMbps)
	fmt.Println("subcarrier  BER-COPA     BER-NoPA     dropped")
	for k := range f.BERCOPA {
		mark := ""
		if f.Dropped[k] {
			mark = "×"
		}
		fmt.Printf("%10d  %11.3e  %11.3e  %s\n", k, f.BERCOPA[k], f.BERNoPA[k], mark)
	}
}

func printFigure9(seed int64, topologies int) {
	f := testbed.RunFigure9(seed, topologies)
	if csvDir != "" {
		maybeExport(f.ExportCSV(csvDir))
	}
	fmt.Println("signal(dBm)  interference(dBm)")
	for i := range f.SignalDBm {
		fmt.Printf("%11.1f  %17.1f\n", f.SignalDBm[i], f.InterferenceDBm[i])
	}
}

func printScenario(ctx context.Context, name string, sc channel.Scenario, seed int64, topologies int, deltaDB float64, skipPlus bool) error {
	cfg := testbed.DefaultConfig(seed)
	cfg.Topologies = topologies
	cfg.InterferenceDeltaDB = deltaDB
	cfg.SkipCOPAPlus = skipPlus
	cfg.MaxParallel = maxParallel
	res, err := testbed.RunScenario(ctx, sc, cfg)
	if err != nil {
		return err
	}
	if csvDir != "" {
		slug := fmt.Sprintf("fig_%s_%+.0fdB.csv", sc.Name, deltaDB)
		if deltaDB == 0 {
			slug = fmt.Sprintf("fig_%s.csv", sc.Name)
		}
		maybeExport(res.ExportCSV(csvDir, slug))
	}
	fmt.Printf("%s — mean aggregate throughput over %d topologies\n", name, topologies)
	for _, scheme := range testbed.AllSchemes {
		vals, ok := res.PerTopology[scheme]
		if !ok {
			continue
		}
		fmt.Printf("  %-10s  mean %6.1f Mb/s   p10 %6.1f   median %6.1f   p90 %6.1f\n",
			scheme, testbed.Mean(vals)/1e6, testbed.Percentile(vals, 10)/1e6,
			testbed.Median(vals)/1e6, testbed.Percentile(vals, 90)/1e6)
	}
	return nil
}

func printFigure14(ctx context.Context, seed int64, topologies int) error {
	f, err := testbed.RunFigure14(ctx, seed, topologies)
	if err != nil {
		return err
	}
	if csvDir != "" {
		maybeExport(f.ExportCSV(csvDir))
	}
	fmt.Printf("%-22s", "scheme \\ scenario")
	for _, sc := range []string{"1x1", "4x2", "3x2"} {
		fmt.Printf("  %6s", sc)
	}
	fmt.Println(" (% over 1-decoder CSMA)")
	for _, scheme := range testbed.Figure14Schemes {
		fmt.Printf("%-22s", scheme)
		for _, sc := range []string{"1x1", "4x2", "3x2"} {
			fmt.Printf("  %+5.1f%%", f.Improvement[sc][scheme])
		}
		fmt.Println()
	}
	return nil
}

func printAccuracy(ctx context.Context, seed int64, topologies int) error {
	acc, err := testbed.RunPredictionAccuracy(ctx, seed, topologies)
	if err != nil {
		return err
	}
	fmt.Println("mean |predicted − realized| / realized, per strategy:")
	for _, k := range []strategy.Kind{strategy.KindCSMA, strategy.KindCOPASeq, strategy.KindNull, strategy.KindConcBF, strategy.KindConcNull} {
		if mae, ok := acc.MAEByKind[k]; ok {
			fmt.Printf("  %-9v  MAE %5.1f%%   bias %+5.1f%%\n", k, mae*100, acc.BiasByKind[k]*100)
		}
	}
	fmt.Printf("mispicked strategy on %.0f%% of topologies, costing %.0f%% each\n",
		acc.MispickRate*100, acc.MispickCostMean*100)
	return nil
}

func printBacklog(seed int64) error {
	fmt.Println("worst-client mean frame delay (ms) vs per-client offered load:")
	fmt.Printf("  %-10s", "scheme")
	loads := []float64{20e6, 40e6, 55e6, 70e6}
	for _, l := range loads {
		fmt.Printf("  %5.0fM", l/1e6)
	}
	fmt.Println()
	rows := []struct {
		name string
		get  func(testbed.BacklogComparison) [2]float64
	}{
		{"CSMA", func(c testbed.BacklogComparison) [2]float64 { return c.CSMADelaySec }},
		{"COPA", func(c testbed.BacklogComparison) [2]float64 { return c.COPADelaySec }},
		{"COPA fair", func(c testbed.BacklogComparison) [2]float64 { return c.COPAFairDelaySec }},
	}
	for _, r := range rows {
		fmt.Printf("  %-10s", r.name)
		for _, l := range loads {
			cmp, err := testbed.RunBacklogComparison(seed, l, 2500)
			if err != nil {
				return err
			}
			d := r.get(cmp)
			worst := d[0]
			if d[1] > worst {
				worst = d[1]
			}
			if worst > 1e6 {
				fmt.Printf("  %6s", "inf")
			} else {
				fmt.Printf("  %6.1f", worst*1e3)
			}
		}
		fmt.Println()
	}
	return nil
}

func printLossSweep(ctx context.Context, seed int64, topologies int, loss, burst float64) error {
	cfg := testbed.DefaultLossSweepConfig(seed)
	// The sweep is exchange-by-exchange (not batch-evaluated), so cap the
	// population to keep -fig all fast.
	if topologies < cfg.Topologies {
		cfg.Topologies = topologies
	}
	cfg.MeanBurst = burst
	if loss > 0 {
		cfg.LossRates = []float64{loss}
	}
	sweep, err := testbed.RunLossSweep(ctx, channel.Scenario4x2, cfg)
	if err != nil {
		return err
	}
	if csvDir != "" {
		maybeExport(sweep.ExportCSV(csvDir))
	}
	kind := "i.i.d."
	if burst > 1 {
		kind = fmt.Sprintf("Gilbert–Elliott, mean burst %.1f", burst)
	}
	fmt.Printf("4x2, %d topologies, %s loss — realized aggregate vs ITS frame loss\n", cfg.Topologies, kind)
	fmt.Printf("CSMA baseline: %.1f Mb/s\n", sweep.MeanCSMABps()/1e6)
	fmt.Println("  loss   aggregate   fallback  retries/exch  ctrl-bytes")
	for _, p := range sweep.Points {
		fmt.Printf("  %3.0f%%  %7.1f Mb/s  %7.1f%%  %12.2f  %10.0f\n",
			p.Loss*100, p.AggregateBps/1e6, p.FallbackRate*100, p.RetriesPerExchange, p.ControlBytesPerExchange)
	}
	return nil
}

func printHeadlines(ctx context.Context, seed int64, topologies int) error {
	cfg := testbed.DefaultConfig(seed)
	cfg.Topologies = topologies
	cfg.SkipCOPAPlus = true
	cfg.MaxParallel = maxParallel
	res, err := testbed.RunScenario(ctx, channel.Scenario4x2, cfg)
	if err != nil {
		return err
	}
	hs := testbed.Headlines(res)
	fmt.Printf("Null loses to CSMA           : %5.1f%%  [paper: 83%%]\n", hs.NullLosesToCSMA*100)
	fmt.Printf("COPA over Null (where loses) : %+5.1f%%  [paper: +64%%]\n", hs.COPAOverNullWhereNullLoses*100)
	fmt.Printf("COPA beats CSMA (same set)   : %5.1f%%  [paper: 76%%]\n", hs.COPABeatsCSMAWhereNullLoses*100)
	fmt.Printf("Null win median (where wins) : %+5.1f%%  [paper: +12%%]\n", hs.NullWinMedian*100)
	fmt.Printf("COPA win median (same set)   : %+5.1f%%  [paper: +45%%]\n", hs.COPAWinMedianWhereNullWins*100)
	fmt.Printf("price of fairness            : %5.1f%%  [paper: ≈3–6%%]\n", hs.PriceOfFairness*100)
	return nil
}

func printMobility(ctx context.Context, seed int64, topologies int, mob *cliflags.MobilityFlags) error {
	if err := mob.Validate(); err != nil {
		return err
	}
	cfg := testbed.DefaultMobilityConfig(seed)
	// The sweep runs a full controller per cell; cap the population to
	// keep -fig all fast.
	if topologies < cfg.Topologies {
		cfg.Topologies = topologies
	}
	cfg.SpeedsMps = mob.Speeds(testbed.DefaultSpeeds())
	cfg.ThresholdsDB = []float64{mob.ThresholdDB}
	cfg.Duration = mob.Duration
	cfg.Step = mob.Step
	cfg.ReassocPerSec = mob.ReassocPerSec
	cfg.ChurnPerSec = mob.ChurnPerSec
	sweep, err := testbed.RunMobilitySweep(ctx, channel.Scenario4x2, cfg)
	if err != nil {
		return err
	}
	if csvDir != "" {
		maybeExport(sweep.ExportCSV(csvDir))
	}
	fmt.Printf("4x2, %d topologies, %v per cell — realized aggregate vs client speed (threshold %.1f dB)\n",
		cfg.Topologies, cfg.Duration, mob.ThresholdDB)
	fmt.Println("  speed     aggregate   renegs/s  incr/s  revoked/s  delta-share")
	for _, p := range sweep.Points {
		fmt.Printf("  %5.1f m/s %7.1f Mb/s  %7.2f  %6.2f  %9.2f  %10.1f%%\n",
			p.SpeedMps, p.AggregateBps/1e6, p.RenegsPerSec, p.IncrementalPerSec,
			p.CertRevocationsPerSec, p.DeltaByteShare*100)
	}
	return nil
}
