package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"copa/internal/channel"
	"copa/internal/obs"
	"copa/internal/serve"
)

func postAllocate(t *testing.T, client *http.Client, url string, body string) (*http.Response, allocateResponse) {
	t.Helper()
	resp, err := client.Post(url+"/v1/allocate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/allocate: %v", err)
	}
	defer resp.Body.Close()
	var ar allocateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, ar
}

func TestAllocateEndpoint(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(newMux(srv))
	defer ts.Close()

	resp, ar := postAllocate(t, ts.Client(), ts.URL, `{"scenario":"1x1","seed":7,"mode":"max"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ar.Cached {
		t.Error("first request reported cached")
	}
	if ar.Selected.AggregateBps <= 0 {
		t.Errorf("selected aggregate %g not positive", ar.Selected.AggregateBps)
	}
	if len(ar.Outcomes) < 3 {
		t.Errorf("only %d outcomes returned", len(ar.Outcomes))
	}
	if _, ok := ar.Outcomes["CSMA"]; !ok {
		t.Error("outcomes are not keyed by strategy name")
	}

	resp2, ar2 := postAllocate(t, ts.Client(), ts.URL, `{"scenario":"1x1","seed":7,"mode":"max"}`)
	if resp2.StatusCode != http.StatusOK || !ar2.Cached {
		t.Fatalf("repeat: status %d cached %v", resp2.StatusCode, ar2.Cached)
	}
	if ar2.Selected != ar.Selected {
		t.Error("cached reply differs from the original")
	}

	// Error surface.
	for body, want := range map[string]int{
		`{"scenario":"9x9","seed":1}`:               http.StatusBadRequest,
		`{"scenario":"1x1","seed":1,"mode":"rand"}`: http.StatusBadRequest,
		`{"scenario":"1x1","impairments":"lab"}`:    http.StatusBadRequest,
		`{"scenario":"1x1","csi_age_ms":-3}`:        http.StatusBadRequest,
		`not json`:                                  http.StatusBadRequest,
		`{"scenario":"1x1","seed":2,"mode":"fair"}`: http.StatusOK,
	} {
		resp, _ := postAllocate(t, ts.Client(), ts.URL, body)
		if resp.StatusCode != want {
			t.Errorf("body %q: status = %d, want %d", body, resp.StatusCode, want)
		}
	}

	hresp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(hresp.Body).Decode(&st); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	if hresp.StatusCode != http.StatusOK || st.Workers != 2 || st.Draining {
		t.Fatalf("healthz = %d, %+v", hresp.StatusCode, st)
	}

	dresp, err := ts.Client().Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/metrics = %d", dresp.StatusCode)
	}
}

// TestLoadMixedHitsAndMisses drives the daemon with concurrent clients
// over a mix of warm (cached) and cold seeds, and requires the sustained
// throughput the issue demands: ≥1000 req/s once the cache is warm.
func TestLoadMixedHitsAndMisses(t *testing.T) {
	srv := serve.New(serve.DefaultConfig())
	defer srv.Close()
	ts := httptest.NewServer(newMux(srv))
	defer ts.Close()

	// Warm the canonical two-AP scenario worlds the load will hit.
	const warmSeeds = 4
	for seed := 0; seed < warmSeeds; seed++ {
		body := fmt.Sprintf(`{"scenario":"4x2","seed":%d}`, seed)
		if resp, _ := postAllocate(t, ts.Client(), ts.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup seed %d: status %d", seed, resp.StatusCode)
		}
	}

	const (
		clients    = 8
		perClient  = 250
		coldEveryN = 100 // a sprinkle of misses among the hits
	)
	var hits, misses atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < perClient; i++ {
				seed := (c*perClient + i) % warmSeeds
				scenario := "4x2"
				if i%coldEveryN == coldEveryN-1 {
					// Unique cold seed: forces a real evaluation (cheap 1x1).
					seed = 100000 + c*perClient + i
					scenario = "1x1"
				}
				body := fmt.Sprintf(`{"scenario":%q,"seed":%d}`, scenario, seed)
				resp, err := client.Post(ts.URL+"/v1/allocate", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				var ar allocateResponse
				err = json.NewDecoder(resp.Body).Decode(&ar)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d err %v", c, resp.StatusCode, err)
					return
				}
				if ar.Cached {
					hits.Add(1)
				} else {
					misses.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := clients * perClient
	rps := float64(total) / elapsed.Seconds()
	t.Logf("%d requests in %v (%.0f req/s), %d cache hits, %d misses",
		total, elapsed, rps, hits.Load(), misses.Load())
	if hits.Load() == 0 || misses.Load() == 0 {
		t.Fatalf("load was not mixed: %d hits, %d misses", hits.Load(), misses.Load())
	}
	if rps < 1000 && !raceEnabled {
		t.Errorf("sustained %.0f req/s, want ≥1000", rps)
	}
}

// TestQueueFullReturns503 forces admission-control shedding through the
// HTTP surface and checks both the status code and the metric.
func TestQueueFullReturns503(t *testing.T) {
	srv := serve.New(serve.Config{
		Workers: 1, QueueDepth: 1, MaxBatch: 1, CacheEntries: -1,
		// Deterministic slow blocker: stall 4x2 evaluations so the
		// burst below reliably finds the queue occupied.
		EvalHook: func(r serve.Request) {
			if r.Scenario == channel.Scenario4x2 {
				time.Sleep(150 * time.Millisecond)
			}
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(newMux(srv))
	defer ts.Close()

	before := obs.Default().Snapshot().Counters["copa.serve.shed_queue_full"]

	// Block the only worker with a slow 4x2 evaluation.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postAllocate(t, ts.Client(), ts.URL, `{"scenario":"4x2","seed":31}`)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("blocker status %d", resp.StatusCode)
		}
	}()
	time.Sleep(30 * time.Millisecond)

	shed := 0
	var burst sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < 16; i++ {
		burst.Add(1)
		go func(i int) {
			defer burst.Done()
			body := fmt.Sprintf(`{"scenario":"1x1","seed":%d}`, 5000+i)
			resp, err := ts.Client().Post(ts.URL+"/v1/allocate", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("burst %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusServiceUnavailable:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("503 without Retry-After")
				}
				mu.Lock()
				shed++
				mu.Unlock()
			case http.StatusOK:
			default:
				t.Errorf("burst %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	burst.Wait()
	wg.Wait()
	if shed == 0 {
		t.Fatal("no request was shed with 503")
	}
	if got := obs.Default().Snapshot().Counters["copa.serve.shed_queue_full"]; got < before+uint64(shed) {
		t.Fatalf("shed_queue_full counter %d did not advance by %d", got, shed)
	}
}

// TestSigtermDrainsAndExitsZero runs the real daemon in-process, admits
// a slow request, sends SIGTERM, and requires the request to finish and
// the process loop to exit 0 within the drain budget.
func TestSigtermDrainsAndExitsZero(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "copaserve-out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-drain-timeout", "30s", "-workers", "1"}, f)
	}()

	// Wait for the daemon to announce its bound address.
	var url string
	deadline := time.Now().Add(5 * time.Second)
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatal("daemon never announced its address")
		}
		data, _ := os.ReadFile(f.Name())
		if _, rest, ok := strings.Cut(string(data), "listening on "); ok {
			url = strings.Fields(rest)[0]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Admit a slow request, then SIGTERM while it is in flight.
	slowDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/v1/allocate", "application/json",
			strings.NewReader(`{"scenario":"4x2","seed":77}`))
		if err != nil {
			slowDone <- -1
			return
		}
		resp.Body.Close()
		slowDone <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case status := <-slowDone:
		if status != http.StatusOK {
			t.Errorf("in-flight request finished with %d, want 200", status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request never finished")
	}
	select {
	case code := <-done:
		if code != 0 {
			data, _ := os.ReadFile(f.Name())
			t.Fatalf("exit = %d, want 0\n%s", code, data)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
	data, _ := os.ReadFile(f.Name())
	if !strings.Contains(string(data), "drained") {
		t.Fatalf("daemon did not report a drain:\n%s", data)
	}
}
