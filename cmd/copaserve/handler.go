package main

import (
	"net/http"

	"copa/internal/api"
	"copa/internal/serve"
)

// The wire types, codecs and routing for /v1/allocate live in
// internal/api so coparouter and copaload speak the same protocol;
// this daemon just mounts the shared handler.
type allocateResponse = api.AllocateResponse

func newMux(srv *serve.Server) *http.ServeMux { return api.NewHandler(srv) }
