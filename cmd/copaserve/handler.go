package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"copa/internal/cliflags"
	"copa/internal/obs"
	"copa/internal/serve"
	"copa/internal/strategy"
)

// allocateRequest is the POST /v1/allocate body. Scenario, mode and
// impairments use the same names as the CLI flags.
type allocateRequest struct {
	Scenario     string  `json:"scenario"`
	Seed         int64   `json:"seed"`
	Mode         string  `json:"mode,omitempty"`
	Impairments  string  `json:"impairments,omitempty"`
	CSIAgeMS     float64 `json:"csi_age_ms,omitempty"`
	MultiDecoder bool    `json:"multi_decoder,omitempty"`
	// Session mode: TimeMS is the controller time of a long-running
	// session; the server derives the CSI epoch and age bucket from it
	// (csi_age_ms is ignored) and the reply carries the allocation's
	// epoch and validity horizon.
	Session bool    `json:"session,omitempty"`
	TimeMS  float64 `json:"time_ms,omitempty"`
}

// outcomeJSON is one strategy's evaluation in wire form.
type outcomeJSON struct {
	Strategy     string     `json:"strategy"`
	Concurrent   bool       `json:"concurrent"`
	SDA          bool       `json:"sda,omitempty"`
	PerClientBps [2]float64 `json:"per_client_bps"`
	PredictedBps [2]float64 `json:"predicted_bps"`
	AggregateBps float64    `json:"aggregate_bps"`
}

func toOutcomeJSON(o strategy.Outcome) outcomeJSON {
	return outcomeJSON{
		Strategy:     o.Kind.String(),
		Concurrent:   o.Concurrent,
		SDA:          o.SDA,
		PerClientBps: o.PerClient,
		PredictedBps: o.Predicted,
		AggregateBps: o.Aggregate(),
	}
}

// allocateResponse is the POST /v1/allocate reply.
type allocateResponse struct {
	Cached    bool  `json:"cached"`
	AgeBucket int   `json:"age_bucket"`
	Epoch     int64 `json:"epoch,omitempty"`
	// ValidUntilMS is the session controller time at which this
	// allocation's age bucket expires (session mode only).
	ValidUntilMS float64                `json:"valid_until_ms,omitempty"`
	Selected     outcomeJSON            `json:"selected"`
	Outcomes     map[string]outcomeJSON `json:"outcomes"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// parseRequest maps the wire request onto a serve.Request.
func parseRequest(ar allocateRequest) (serve.Request, error) {
	var req serve.Request
	sc, err := cliflags.ParseScenario(ar.Scenario)
	if err != nil {
		return req, err
	}
	mode := strategy.ModeMax
	if ar.Mode != "" {
		if mode, err = cliflags.ParseMode(ar.Mode); err != nil {
			return req, err
		}
	}
	imp, err := cliflags.ParseImpairments(ar.Impairments)
	if err != nil {
		return req, err
	}
	if ar.CSIAgeMS < 0 {
		return req, fmt.Errorf("negative csi_age_ms %g", ar.CSIAgeMS)
	}
	if ar.TimeMS < 0 {
		return req, fmt.Errorf("negative time_ms %g", ar.TimeMS)
	}
	if ar.TimeMS > 0 && !ar.Session {
		return req, fmt.Errorf("time_ms requires session mode")
	}
	req = serve.Request{
		Scenario:     sc,
		Seed:         ar.Seed,
		Mode:         mode,
		Impairments:  imp,
		CSIAge:       time.Duration(ar.CSIAgeMS * float64(time.Millisecond)),
		MultiDecoder: ar.MultiDecoder,
		Session:      ar.Session,
		Time:         time.Duration(ar.TimeMS * float64(time.Millisecond)),
	}
	return req, nil
}

// healthzResponse wraps the pool stats with the binary's build
// identity, so one probe answers both "is it healthy" and "what is it
// running".
type healthzResponse struct {
	serve.Stats
	Build obs.BuildInfo `json:"build"`
}

// newMux routes the daemon: the allocation endpoint, a health probe
// reporting queue/cache occupancy and build identity, and the obs
// debug endpoints (/metrics OpenMetrics exposition, /debug/vars,
// /debug/metrics, /debug/spans, /debug/buildinfo, /debug/pprof).
//
// /v1/allocate participates in distributed tracing: an incoming W3C
// traceparent header continues the caller's trace, otherwise the
// handler roots a new one (subject to -trace-sample), and either way
// the response echoes a traceparent naming the request's trace so the
// client can fetch the stitched tree from /debug/spans?trace=<id>.
func newMux(srv *serve.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/allocate", func(w http.ResponseWriter, r *http.Request) {
		ctx := obs.ExtractHTTP(r.Context(), r.Header)
		ctx, span := obs.StartSpan(ctx, "http.allocate")
		if sc := span.Context(); sc.Valid() {
			w.Header().Set(obs.TraceparentHeader, sc.Traceparent())
		}
		var ar allocateRequest
		if err := json.NewDecoder(r.Body).Decode(&ar); err != nil {
			span.EndErr(err)
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		req, err := parseRequest(ar)
		if err != nil {
			span.EndErr(err)
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		span.SetAttr("scenario", ar.Scenario)
		res, cached, err := srv.Allocate(ctx, req)
		span.SetAttr("cached", fmt.Sprintf("%t", cached))
		span.EndErr(err)
		if err != nil {
			switch {
			case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrServerClosed):
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, "%v", err)
			case errors.Is(err, serve.ErrExpired), errors.Is(err, context.DeadlineExceeded):
				writeError(w, http.StatusGatewayTimeout, "%v", err)
			default:
				writeError(w, http.StatusInternalServerError, "%v", err)
			}
			return
		}
		resp := allocateResponse{
			Cached:       cached,
			AgeBucket:    res.AgeBucket,
			Epoch:        res.Epoch,
			ValidUntilMS: float64(res.ValidUntil) / float64(time.Millisecond),
			Selected:     toOutcomeJSON(res.Selected),
			Outcomes:     make(map[string]outcomeJSON, len(res.Outcomes)),
		}
		for k, o := range res.Outcomes {
			resp.Outcomes[k.String()] = toOutcomeJSON(o)
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		st := srv.Stats()
		status := http.StatusOK
		if st.Draining {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, healthzResponse{Stats: st, Build: obs.ReadBuildInfo()})
	})
	dbg := obs.DebugMux()
	mux.Handle("/debug/", dbg)
	mux.Handle("/metrics", dbg)
	return mux
}
