package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"copa/internal/obs"
	"copa/internal/serve"
)

// TestAllocateTraceCompleteness is the tracing acceptance test: one
// cache-miss /v1/allocate yields one trace whose stage spans — cache,
// admission, queue, batch, evaluate — are all children of the request
// span and sum (within scheduling tolerance) to its duration.
func TestAllocateTraceCompleteness(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(newMux(srv))
	defer ts.Close()

	// A cold 4x2 world: the evaluation is slow enough (tens of ms) to
	// dominate scheduling noise in the stage breakdown.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/allocate",
		strings.NewReader(`{"scenario":"4x2","seed":990001}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	// The response must name the trace so a client can fetch the tree.
	tp := resp.Header.Get(obs.TraceparentHeader)
	sc, ok := obs.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", tp)
	}
	traceID := sc.TraceID.String()

	spans := obs.Tracing().TraceSpans(traceID)
	byName := map[string]obs.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root, ok := byName["http.allocate"]
	if !ok {
		t.Fatalf("trace %s has no http.allocate root; spans: %v", traceID, names(spans))
	}
	if root.Parent != "" {
		t.Fatalf("http.allocate has parent %q, want root", root.Parent)
	}
	alloc, ok := byName["serve.allocate"]
	if !ok {
		t.Fatalf("trace missing serve.allocate; spans: %v", names(spans))
	}
	if alloc.Parent != root.ID {
		t.Fatalf("serve.allocate parented to %q, want %q", alloc.Parent, root.ID)
	}

	stages := []string{"serve.cache", "serve.admission", "serve.queue", "serve.batch", "serve.evaluate"}
	var sum time.Duration
	for _, name := range stages {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("trace missing stage %s; spans: %v", name, names(spans))
		}
		if s.Parent != alloc.ID {
			t.Errorf("%s parented to %q, want serve.allocate %q", name, s.Parent, alloc.ID)
		}
		sum += s.Duration
	}
	// The stages are disjoint sub-intervals of the request span: their
	// sum cannot meaningfully exceed it, and with evaluate dominating it
	// must account for most of it.
	if sum > alloc.Duration*3/2 {
		t.Errorf("stage sum %v exceeds request span %v", sum, alloc.Duration)
	}
	if sum < alloc.Duration/2 {
		t.Errorf("stage sum %v covers under half of request span %v — a stage is missing time", sum, alloc.Duration)
	}
}

// TestCrossProcessPropagation plays the client role of a distributed
// trace: a local root span is injected as a traceparent header, crosses
// the HTTP boundary, and the server's spans join the client's trace —
// stitched by TraceID, parented across the wire.
func TestCrossProcessPropagation(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(newMux(srv))
	defer ts.Close()

	ctx, clientSpan := obs.StartSpan(context.Background(), "client.request")
	if clientSpan == nil {
		t.Fatal("client root span not started")
	}
	clientID := clientSpan.Context()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/allocate",
		strings.NewReader(`{"scenario":"1x1","seed":990002}`))
	if err != nil {
		t.Fatal(err)
	}
	obs.InjectHTTP(ctx, req.Header)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	clientSpan.End()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	// The server must CONTINUE the client's trace, not root its own.
	echo, ok := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
	if !ok || echo.TraceID != clientID.TraceID {
		t.Fatalf("response trace %v, want client trace %v", echo.TraceID, clientID.TraceID)
	}

	spans := obs.Tracing().TraceSpans(clientID.TraceID.String())
	byName := map[string]obs.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	server, ok := byName["http.allocate"]
	if !ok {
		t.Fatalf("server side recorded no http.allocate in the client's trace; spans: %v", names(spans))
	}
	if server.Parent != clientID.SpanID.String() {
		t.Fatalf("server span parented to %q, want the client span %q", server.Parent, clientID.SpanID)
	}
	client, ok := byName["client.request"]
	if !ok {
		t.Fatal("client span not recorded")
	}
	if client.Trace != server.Trace {
		t.Fatalf("client trace %s != server trace %s", client.Trace, server.Trace)
	}
	if _, ok := byName["serve.evaluate"]; !ok {
		t.Fatalf("server pipeline stages did not join the trace; spans: %v", names(spans))
	}
}

func names(spans []obs.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}
