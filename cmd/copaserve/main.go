// Command copaserve is the allocation-as-a-service daemon: an HTTP/JSON
// front end over the pooled, batching, caching evaluator in
// internal/serve. Clients name a deterministic world — scenario, seed,
// impairment profile, CSI age — and get back every strategy's evaluated
// outcome plus the COPA selection, computed once and cached.
//
// Endpoints:
//
//	POST /v1/allocate   {"scenario":"4x2","seed":7,"mode":"max"}
//	GET  /v1/healthz    queue/cache occupancy; 503 while draining
//	GET  /debug/...     expvar, metrics snapshot, spans, pprof
//
// Admission control is explicit: a full queue sheds with 503 and
// Retry-After, a request whose deadline passes while queued gets 504.
// SIGTERM/SIGINT stops accepting work, drains in-flight requests within
// -drain-timeout, and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"copa/internal/cliflags"
	"copa/internal/obs"
	"copa/internal/serve"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, out *os.File) int {
	def := serve.DefaultConfig()
	fs := flag.NewFlagSet("copaserve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7800", "HTTP host:port to serve on (\":0\" picks a port)")
	workers := fs.Int("workers", def.Workers, "evaluator pool size (one reusable workspace per worker)")
	queue := fs.Int("queue", def.QueueDepth, "admission queue depth; a full queue sheds requests with 503")
	batchWindow := fs.Duration("batch-window", def.BatchWindow, "how long a worker waits to coalesce queued requests into a batch (negative: no waiting)")
	cacheEntries := fs.Int("cache-entries", def.CacheEntries, "result cache bound in entries (negative disables caching)")
	deadline := fs.Duration("deadline", def.DefaultDeadline, "default per-request deadline")
	drainTimeout := fs.Duration("drain-timeout", def.DrainTimeout, "how long shutdown waits for in-flight requests")
	addrFile := fs.String("addr-file", "", "write the bound base URL to this file once listening (for scripted handoff with \":0\")")
	dbg := cliflags.Debug(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopDebug, err := dbg.Start()
	if err != nil {
		obs.Logger().Error("debug server failed", "addr", dbg.Addr, "err", err)
		return 1
	}
	defer stopDebug()
	logger := obs.Logger()

	cfg := def
	cfg.Workers = *workers
	cfg.QueueDepth = *queue
	cfg.BatchWindow = *batchWindow
	cfg.CacheEntries = *cacheEntries
	cfg.DefaultDeadline = *deadline
	cfg.DrainTimeout = *drainTimeout
	srv := serve.New(cfg)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen failed", "addr", *listen, "err", err)
		return 1
	}
	hs := &http.Server{Handler: newMux(srv)}
	fmt.Fprintf(out, "copaserve listening on http://%s (workers=%d queue=%d cache=%d)\n",
		ln.Addr(), srv.Stats().Workers, *queue, *cacheEntries)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte("http://"+ln.Addr().String()+"\n"), 0o644); err != nil {
			logger.Error("addr-file write failed", "path", *addrFile, "err", err)
			return 1
		}
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		logger.Error("http server failed", "err", err)
		return 1
	case <-ctx.Done():
	}
	stop()

	// Drain: stop accepting connections, let in-flight handlers (each
	// blocked in Allocate) finish, then retire the evaluator pool. Both
	// phases share one drain budget.
	fmt.Fprintf(out, "draining (timeout %s)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := hs.Shutdown(dctx); err != nil {
		logger.Error("http drain incomplete", "err", err)
		code = 1
	}
	if err := srv.Shutdown(dctx); err != nil {
		logger.Error("pool drain incomplete", "err", err)
		code = 1
	}
	fmt.Fprintln(out, "drained")
	return code
}
