//go:build race

package main

// raceEnabled reports that this binary was built with the race detector,
// which slows execution far too much for throughput assertions to hold.
const raceEnabled = true
