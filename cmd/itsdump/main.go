// Command itsdump builds the three ITS control frames for a synthetic
// topology, prints their wire sizes and the CSI compression statistics,
// and round-trips every frame through its codec as a self-check.
//
// Usage:
//
//	itsdump -scenario 4x2 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"copa/internal/channel"
	"copa/internal/csi"
	"copa/internal/mac"
	"copa/internal/ofdm"
	"copa/internal/precoding"
	"copa/internal/rng"
)

func main() {
	scenario := flag.String("scenario", "4x2", "antenna scenario: 1x1, 4x2 or 3x2")
	seed := flag.Int64("seed", 1, "channel seed")
	flag.Parse()

	var sc channel.Scenario
	switch *scenario {
	case "1x1":
		sc = channel.Scenario1x1
	case "4x2":
		sc = channel.Scenario4x2
	case "3x2":
		sc = channel.Scenario3x2
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(1)
	}

	src := rng.New(*seed)
	dep := channel.NewDeployment(src.Split(1), sc)
	imp := channel.DefaultImpairments()

	// The follower's CSI to both clients, as carried in the ITS REQ.
	csi1raw := imp.EstimateCSI(src.Split(2), dep.H[1][0])
	csi2raw := imp.EstimateCSI(src.Split(3), dep.H[1][1])
	blob1, err := csi.EncodeLink(csi1raw)
	check(err)
	blob2, err := csi.EncodeLink(csi2raw)
	check(err)

	raw := csi.RawSize(sc.ClientAntennas, sc.APAntennas, ofdm.NumSubcarriers)
	fmt.Printf("scenario %s: CSI raw %d B → compressed %d B / %d B (ratios %.2f / %.2f)\n",
		sc.Name, raw, len(blob1), len(blob2),
		csi.Ratio(raw, len(blob1)), csi.Ratio(raw, len(blob2)))

	rec1, err := csi.DecodeLink(blob1)
	check(err)
	fmt.Printf("CSI reconstruction error: %.1f dB\n",
		csi.ReconstructionErrorDB(csi1raw.Subcarriers, rec1.Subcarriers))

	addr := func(b byte) mac.Addr { return mac.Addr{0x02, 0, 0, 0, 0, b} }
	init := &mac.ITSInit{Leader: addr(1), Client: addr(0x11), AirtimeUS: 4000}
	initFrame := init.Marshal()

	req := &mac.ITSReq{
		Leader: addr(1), Follower: addr(2),
		Client1: addr(0x11), Client2: addr(0x12),
		AirtimeUS:    4000,
		CSIToClient1: blob1, CSIToClient2: blob2,
	}
	reqFrame := req.Marshal()

	var ackFrame []byte
	if sc.APAntennas > sc.ClientAntennas {
		p, err := precoding.Nulling(csi2raw, csi1raw, sc.APAntennas-sc.ClientAntennas)
		check(err)
		pre, err := csi.EncodePrecoder(p.PerSubcarrier)
		check(err)
		ack := &mac.ITSAck{
			Leader: addr(1), Follower: addr(2),
			Client1: addr(0x11), Client2: addr(0x12),
			AirtimeUS: 4000, Decision: mac.DecideConcurrent,
			FollowerPrecoder: pre,
			FollowerPowerMW:  precoding.EqualSplit(ofdm.NumSubcarriers, p.Streams, channel.BudgetForAntennasMW(sc.APAntennas)),
		}
		ackFrame = ack.Marshal()
	} else {
		ack := &mac.ITSAck{
			Leader: addr(1), Follower: addr(2),
			Client1: addr(0x11), Client2: addr(0x12),
			AirtimeUS: 4000, Decision: mac.DecideSequential,
		}
		ackFrame = ack.Marshal()
	}

	fmt.Printf("\nwire sizes: ITS INIT %d B · ITS REQ %d B · ITS ACK %d B\n",
		len(initFrame), len(reqFrame), len(ackFrame))

	// Round-trip self-check.
	if _, err := mac.UnmarshalITSInit(initFrame); err != nil {
		check(err)
	}
	if _, err := mac.UnmarshalITSReq(reqFrame); err != nil {
		check(err)
	}
	if _, err := mac.UnmarshalITSAck(ackFrame); err != nil {
		check(err)
	}
	fmt.Println("round-trip: all three frames decode cleanly")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
