package main

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Host records where a benchmark report was produced; regressions are
// only meaningful between runs on comparable hosts, and the bytes/allocs
// gates additionally assume the same architecture.
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Hostname  string `json:"hostname,omitempty"`
}

// Benchmark is one benchmark's best observed sample.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// Report is the BENCH.json schema.
type Report struct {
	Host       Host        `json:"host"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
//
//	BenchmarkEquiSNRDisabled-8   3   1606446 ns/op   4096 B/op   7 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so reports are comparable across
// machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op`)

// parseBenchOutput extracts every benchmark sample from go test output.
func parseBenchOutput(out []byte) []Benchmark {
	var samples []Benchmark
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		bytes, _ := strconv.ParseInt(m[4], 10, 64)
		allocs, _ := strconv.ParseInt(m[5], 10, 64)
		samples = append(samples, Benchmark{
			Name:        m[1],
			Iterations:  iters,
			NsPerOp:     ns,
			BytesPerOp:  bytes,
			AllocsPerOp: allocs,
			Samples:     1,
		})
	}
	return samples
}

// buildReport folds repeated samples of the same benchmark into its best
// (minimum) observation — the standard way to reduce scheduler noise —
// and attaches host metadata.
func buildReport(samples []Benchmark) Report {
	best := make(map[string]Benchmark)
	for _, s := range samples {
		b, ok := best[s.Name]
		if !ok {
			best[s.Name] = s
			continue
		}
		if s.NsPerOp < b.NsPerOp {
			b.NsPerOp = s.NsPerOp
			b.Iterations = s.Iterations
		}
		if s.BytesPerOp < b.BytesPerOp {
			b.BytesPerOp = s.BytesPerOp
		}
		if s.AllocsPerOp < b.AllocsPerOp {
			b.AllocsPerOp = s.AllocsPerOp
		}
		b.Samples++
		best[s.Name] = b
	}
	names := make([]string, 0, len(best))
	for n := range best {
		names = append(names, n)
	}
	sort.Strings(names)
	r := Report{Host: hostMeta()}
	for _, n := range names {
		r.Benchmarks = append(r.Benchmarks, best[n])
	}
	return r
}

// compare gates cur against base: allocs/op must not exceed the baseline
// at all (allocation counts are deterministic with fixed -benchtime Nx),
// B/op may grow by at most tolBytes relative, and ns/op is advisory only
// (CI machines are too noisy to gate on time). A benchmark present in
// the baseline but missing from the current run is a failure — a renamed
// or deleted benchmark must come with a baseline update.
func compare(base, cur Report, tolBytes float64) []string {
	curBy := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	var regressions []string
	for _, b := range base.Benchmarks {
		c, ok := curBy[b.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from current run (baseline has it)", b.Name))
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %d > baseline %d", b.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
		limit := float64(b.BytesPerOp) * (1 + tolBytes)
		if float64(c.BytesPerOp) > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: B/op %d > baseline %d (+%.0f%% tolerance = %.0f)",
				b.Name, c.BytesPerOp, b.BytesPerOp, tolBytes*100, limit))
		}
		if b.NsPerOp > 0 && c.NsPerOp > 2*b.NsPerOp {
			// Time is never a gate: surface a note instead of failing.
			fmt.Printf("note: %s ns/op %.0f is >2x baseline %.0f (advisory only)\n",
				b.Name, c.NsPerOp, b.NsPerOp)
		}
	}
	return regressions
}
