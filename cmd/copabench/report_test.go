package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: copa
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEquiSNRDisabled-8     	       5	   1606446 ns/op	    4096 B/op	       7 allocs/op
BenchmarkEquiSNRDisabled-8     	       5	   1590000 ns/op	    4096 B/op	       7 allocs/op
BenchmarkEvaluateAllDisabled-8 	       5	 166976291 ns/op	 1220472 B/op	    3921 allocs/op
PASS
ok  	copa	0.679s
`

func TestParseBenchOutput(t *testing.T) {
	samples := parseBenchOutput([]byte(sampleOutput))
	if len(samples) != 3 {
		t.Fatalf("parsed %d samples, want 3", len(samples))
	}
	s := samples[0]
	if s.Name != "BenchmarkEquiSNRDisabled" {
		t.Errorf("name %q: GOMAXPROCS suffix not stripped", s.Name)
	}
	if s.Iterations != 5 || s.NsPerOp != 1606446 || s.BytesPerOp != 4096 || s.AllocsPerOp != 7 {
		t.Errorf("sample fields wrong: %+v", s)
	}
}

func TestBuildReportKeepsBest(t *testing.T) {
	r := buildReport(parseBenchOutput([]byte(sampleOutput)))
	if len(r.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2 after folding", len(r.Benchmarks))
	}
	// Sorted by name: EquiSNR first.
	b := r.Benchmarks[0]
	if b.Name != "BenchmarkEquiSNRDisabled" || b.NsPerOp != 1590000 || b.Samples != 2 {
		t.Errorf("best-folding wrong: %+v", b)
	}
	if r.Host.GoVersion == "" || r.Host.GOARCH == "" {
		t.Error("host metadata missing")
	}
}

func mkReport(name string, ns float64, bytes, allocs int64) Report {
	return Report{Benchmarks: []Benchmark{{
		Name: name, NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs,
	}}}
}

func TestCompareGates(t *testing.T) {
	base := mkReport("BenchmarkX", 1000, 1000, 10)

	if regs := compare(base, mkReport("BenchmarkX", 1000, 1000, 10), 0.10); len(regs) != 0 {
		t.Errorf("identical run flagged: %v", regs)
	}
	// Allocations are gated exactly.
	if regs := compare(base, mkReport("BenchmarkX", 1000, 1000, 11), 0.10); len(regs) != 1 ||
		!strings.Contains(regs[0], "allocs/op") {
		t.Errorf("alloc regression not caught: %v", regs)
	}
	// Fewer allocations is an improvement, not a regression.
	if regs := compare(base, mkReport("BenchmarkX", 1000, 1000, 5), 0.10); len(regs) != 0 {
		t.Errorf("improvement flagged: %v", regs)
	}
	// Bytes get a relative tolerance.
	if regs := compare(base, mkReport("BenchmarkX", 1000, 1099, 10), 0.10); len(regs) != 0 {
		t.Errorf("within-tolerance bytes flagged: %v", regs)
	}
	if regs := compare(base, mkReport("BenchmarkX", 1000, 1200, 10), 0.10); len(regs) != 1 ||
		!strings.Contains(regs[0], "B/op") {
		t.Errorf("bytes regression not caught: %v", regs)
	}
	// Time is advisory: a 10x slowdown alone must not fail the gate.
	if regs := compare(base, mkReport("BenchmarkX", 10000, 1000, 10), 0.10); len(regs) != 0 {
		t.Errorf("time-only change flagged: %v", regs)
	}
	// A benchmark disappearing from the run is a failure.
	if regs := compare(base, mkReport("BenchmarkY", 1000, 1000, 10), 0.10); len(regs) != 1 ||
		!strings.Contains(regs[0], "missing") {
		t.Errorf("missing benchmark not caught: %v", regs)
	}
}
