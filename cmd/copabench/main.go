// Command copabench runs the repository's canonical benchmarks with
// -benchmem and emits a machine-readable BENCH.json (ns/op, B/op,
// allocs/op per benchmark plus host metadata). With -check it compares
// the run against a checked-in baseline and exits non-zero on
// regression, which is how CI gates allocation regressions:
//
//	go run ./cmd/copabench -out BENCH.json
//	go run ./cmd/copabench -check -baseline BENCH_baseline.json
//
// Benchmarks run with a fixed iteration count (-benchtime 5x by
// default) so allocs/op is deterministic: one-time warm-up costs (arena
// growth, DFT plan construction) amortize identically run to run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
)

func main() {
	var (
		pattern   = flag.String("bench", "EquiSNR|EvaluateAll|Figure9|ServeAllocate", "benchmark regexp passed to go test -bench")
		count     = flag.Int("count", 3, "samples per benchmark (best is kept)")
		benchtime = flag.String("benchtime", "5x", "go test -benchtime value; Nx keeps allocs/op deterministic")
		pkg       = flag.String("pkg", ".", "package containing the benchmarks")
		out       = flag.String("out", "BENCH.json", "output JSON path ('' to skip writing)")
		baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline JSON path for -check")
		check     = flag.Bool("check", false, "compare against -baseline and exit 1 on regression")
		tolBytes  = flag.Float64("tol-bytes", 0.10, "allowed relative B/op increase over baseline")
	)
	flag.Parse()

	raw, err := runBenchmarks(*pkg, *pattern, *benchtime, *count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "copabench: %v\n", err)
		os.Exit(2)
	}
	report := buildReport(parseBenchOutput(raw))
	if len(report.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "copabench: no benchmarks matched %q\n", *pattern)
		os.Exit(2)
	}

	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "copabench: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "copabench: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
	}
	for _, b := range report.Benchmarks {
		fmt.Printf("  %-32s %14.0f ns/op %12d B/op %9d allocs/op\n", b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}

	if *check {
		base, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "copabench: reading baseline: %v\n", err)
			os.Exit(2)
		}
		regressions := compare(base, report, *tolBytes)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", r)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "copabench: %d regression(s) vs %s\n", len(regressions), *baseline)
			os.Exit(1)
		}
		fmt.Printf("no regressions vs %s\n", *baseline)
	}
}

func runBenchmarks(pkg, pattern, benchtime string, count int) ([]byte, error) {
	args := []string{
		"test", "-run", "XXX",
		"-bench", pattern,
		"-benchmem",
		"-benchtime", benchtime,
		"-count", fmt.Sprint(count),
		pkg,
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return out, fmt.Errorf("go %v: %w", args, err)
	}
	return out, nil
}

func hostMeta() Host {
	hostname, _ := os.Hostname()
	return Host{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Hostname:  hostname,
	}
}

func readReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
