// Command coparouter is copaserve's sharded front tier: it
// consistent-hashes each allocation request's cache identity across a
// pool of copaserve backends (so the fleet's LRU caches shard the key
// space instead of duplicating it), hedges requests that exceed a
// p99-derived latency budget to the next backend on the ring, and
// applies priority-class admission so interactive allocations shed
// last and campaign/fleet backfill sheds first.
//
// Endpoints:
//
//	POST /v1/allocate   proxied to the home shard, hedged on silence
//	GET  /v1/healthz    pool health + admission state; 503 while draining
//	GET  /debug/...     expvar, metrics snapshot, spans, pprof
//
// Responses through the router are byte-identical to direct copaserve
// responses (scripts/router_smoke.sh cmp's this). SIGTERM/SIGINT flips
// into draining — new work sheds with 503 while in-flight requests
// finish — then exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"copa/internal/cliflags"
	"copa/internal/obs"
	"copa/internal/router"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("coparouter", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7900", "HTTP host:port to serve on (\":0\" picks a port)")
	addrFile := fs.String("addr-file", "", "write the bound base URL to this file once listening (for scripted handoff with \":0\")")
	maxInflight := fs.Int("max-inflight", 256, "interactive admission watermark; requests beyond it shed with 503")
	batchShare := fs.Float64("batch-share", 0.5, "fraction of -max-inflight batch-class requests may occupy")
	coherence := fs.Duration("coherence", 0, "CSI coherence time for shard-key age bucketing (0 = the shared default; must match the backends)")
	healthInterval := fs.Duration("health-interval", 500*time.Millisecond, "active backend health-probe period (negative disables)")
	attemptTimeout := fs.Duration("attempt-timeout", 30*time.Second, "per-backend attempt timeout")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second, "how long shutdown waits for in-flight requests")
	rf := cliflags.Router(fs)
	dbg := cliflags.Debug(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger := obs.Logger()
	if err := rf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	stopDebug, err := dbg.Start()
	if err != nil {
		logger.Error("debug server failed", "addr", dbg.Addr, "err", err)
		return 1
	}
	defer stopDebug()

	rt, err := router.New(router.Config{
		Backends:       rf.Backends,
		Coherence:      *coherence,
		MaxInflight:    *maxInflight,
		BatchShare:     *batchShare,
		PriorityHeader: rf.PriorityHeader,
		HedgeBudget:    rf.HedgeBudget,
		HealthInterval: *healthInterval,
		AttemptTimeout: *attemptTimeout,
	})
	if err != nil {
		logger.Error("router init failed", "err", err)
		return 1
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen failed", "addr", *listen, "err", err)
		return 1
	}
	hs := &http.Server{Handler: rt.Handler()}
	fmt.Fprintf(out, "coparouter listening on http://%s (%s)\n", ln.Addr(), rt)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte("http://"+ln.Addr().String()+"\n"), 0o644); err != nil {
			logger.Error("addr-file write failed", "path", *addrFile, "err", err)
			return 1
		}
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		logger.Error("http server failed", "err", err)
		return 1
	case <-ctx.Done():
	}
	stop()

	// Drain: shed new allocations (and fail the upstream health check)
	// while requests already dispatched to backends finish.
	fmt.Fprintf(out, "draining (timeout %s)\n", *drainTimeout)
	rt.SetDraining(true)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := hs.Shutdown(dctx); err != nil {
		logger.Error("http drain incomplete", "err", err)
		code = 1
	}
	fmt.Fprintln(out, "drained")
	return code
}
