package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"copa/internal/api"
	"copa/internal/serve"
)

func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Config{Workers: 1})
	ts := httptest.NewServer(api.NewHandler(srv))
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func TestBadFlags(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	for name, args := range map[string][]string{
		"no backends":    {"-listen", "127.0.0.1:0"},
		"bad backend":    {"-listen", "127.0.0.1:0", "-backends", "not-a-url"},
		"unknown flag":   {"-nope"},
		"bad hedge":      {"-backends", "http://a:1", "-hedge-budget", "-5ms"},
		"blank priority": {"-backends", "http://a:1", "-priority-header", ""},
	} {
		if code := run(args, devnull); code != 2 {
			t.Errorf("%s: exit = %d, want 2", name, code)
		}
	}
}

// TestDaemonLifecycle boots the real coparouter in-process over two
// real copaserve backends, checks requests proxy and cache through it,
// then SIGTERMs and requires a clean drain.
func TestDaemonLifecycle(t *testing.T) {
	b1, b2 := newBackend(t), newBackend(t)
	addrFile := filepath.Join(t.TempDir(), "addr")
	f, err := os.CreateTemp(t.TempDir(), "coparouter-out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-backends", b1.URL + "," + b2.URL,
			"-health-interval", "-1ms",
		}, f)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatal("router never wrote its addr-file")
		}
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			base = strings.TrimSpace(string(data))
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	var cached bool
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/v1/allocate", api.ContentTypeJSON,
			strings.NewReader(`{"scenario":"4x2","seed":9}`))
		if err != nil {
			t.Fatal(err)
		}
		var ar api.AllocateResponse
		err = json.NewDecoder(resp.Body).Decode(&ar)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("allocate via daemon: status %d err %v", resp.StatusCode, err)
		}
		cached = ar.Cached
	}
	if !cached {
		t.Error("second identical request was not served from a backend cache")
	}

	hresp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", hresp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			data, _ := os.ReadFile(f.Name())
			t.Fatalf("exit = %d, want 0\n%s", code, data)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
	data, _ := os.ReadFile(f.Name())
	if !strings.Contains(string(data), "drained") {
		t.Fatalf("daemon did not report a drain:\n%s", data)
	}
}
