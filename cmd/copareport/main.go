// Command copareport regenerates the paper's evaluation and writes a
// single self-contained HTML report with every figure rendered as inline
// SVG — CDFs, per-subcarrier curves, the topology scatter, and the
// summary tables, each annotated with the paper's own numbers.
//
// Usage:
//
//	copareport -o report.html -topologies 30
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"copa/internal/channel"
	"copa/internal/obs"
	"copa/internal/testbed"
	"copa/internal/viz"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("copareport", flag.ExitOnError)
	out := fs.String("o", "report.html", "output HTML file")
	seed := fs.Int64("seed", 1, "master seed")
	topologies := fs.Int("topologies", 30, "topologies per scenario")
	skipPlus := fs.Bool("skip-copa-plus", false, "skip the slow COPA+ variants")
	verbose := fs.Bool("v", false, "debug logging (per-section progress)")
	_ = fs.Parse(args)
	obs.SetVerbose(*verbose)
	logger := obs.Logger()

	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8">
<title>COPA reproduction report</title>
<style>body{font-family:sans-serif;max-width:900px;margin:2em auto;padding:0 1em}
h2{border-bottom:1px solid #ccc;padding-bottom:4px}
table{border-collapse:collapse}td,th{border:1px solid #999;padding:4px 10px;text-align:right}
th:first-child,td:first-child{text-align:left}.paper{color:#888}</style></head><body>
<h1>COPA — reproduction report</h1>
<p>Every figure and table of the CoNEXT 2015 evaluation, regenerated on the
simulated testbed (seed `)
	fmt.Fprintf(&b, "%d, %d topologies). Grey values are the paper's.</p>", *seed, *topologies)

	failed := false
	section := func(title string, f func() error) {
		if failed {
			return
		}
		fmt.Fprintf(&b, "<h2>%s</h2>", title)
		logger.Debug("rendering section", "section", title, "seed", *seed, "topologies", *topologies)
		if err := f(); err != nil {
			logger.Error("section failed", "section", title, "err", err)
			failed = true
		}
	}

	section("Figure 2 — narrow-band fading", func() error {
		f := testbed.RunFigure2(*seed)
		ch := viz.Chart{Title: "Received power per subcarrier", XLabel: "subcarrier", YLabel: "dBm"}
		for a := 0; a < 2; a++ {
			s := viz.Series{Name: fmt.Sprintf("antenna %d", a+1)}
			for k, v := range f.PowerDBm[a] {
				s.X = append(s.X, float64(k))
				s.Y = append(s.Y, v)
			}
			ch.Series = append(ch.Series, s)
		}
		b.WriteString(ch.SVG())
		return nil
	})

	section("Figure 3 — end-to-end effect of nulling", func() error {
		f := testbed.RunFigure3(*seed, *topologies)
		fmt.Fprintf(&b, `<table><tr><th></th><th>measured</th><th class="paper">paper</th></tr>
<tr><td>INR reduction</td><td>%+.1f dB (σ %.1f)</td><td class="paper">≈−27 dB</td></tr>
<tr><td>SNR reduction</td><td>%+.1f dB (σ %.1f)</td><td class="paper">≈−8 dB</td></tr>
<tr><td>SINR increase</td><td>%+.1f dB (σ %.1f)</td><td class="paper">≈+18 dB</td></tr></table>`,
			f.INRReductionMeanDB, f.INRReductionStdDB,
			f.SNRReductionMeanDB, f.SNRReductionStdDB,
			f.SINRIncreaseMeanDB, f.SINRIncreaseStdDB)
		return nil
	})

	section("Figure 4 — per-subcarrier effects of nulling", func() error {
		f := testbed.RunFigure4(*seed)
		ch := viz.Chart{Title: "S(I)NR per subcarrier", XLabel: "subcarrier", YLabel: "dB"}
		add := func(name string, ys []float64) {
			s := viz.Series{Name: name}
			for k, v := range ys {
				s.X = append(s.X, float64(k))
				s.Y = append(s.Y, v)
			}
			ch.Series = append(ch.Series, s)
		}
		add("SNR BF", f.SNRBFDB)
		add("SNR Null", f.SNRNullDB)
		add("SINR Null", f.SINRNullDB)
		b.WriteString(ch.SVG())
		return nil
	})

	section("Table 1 — MAC overhead", func() error {
		b.WriteString(`<table><tr><th>coherence</th><th>COPA conc</th><th>COPA seq</th><th>CSMA CTS</th><th>CSMA RTS/CTS</th></tr>`)
		paper := [][2][4]float64{
			{{9.3, 7.7, 2.7, 3.7}}, {{5.1, 3.5, 2.7, 3.7}}, {{4.5, 2.8, 2.7, 3.7}},
		}
		for i, r := range testbed.Table1() {
			p := paper[i][0]
			fmt.Fprintf(&b, `<tr><td>%s</td><td>%.1f%% <span class="paper">(%.1f)</span></td><td>%.1f%% <span class="paper">(%.1f)</span></td><td>%.1f%% <span class="paper">(%.1f)</span></td><td>%.1f%% <span class="paper">(%.1f)</span></td></tr>`,
				r.Coherence, r.COPAConc*100, p[0], r.COPASeq*100, p[1], r.CSMACTS*100, p[2], r.CSMARTS*100, p[3])
		}
		b.WriteString(`</table>`)
		return nil
	})

	section("Figure 7 — BER per subcarrier under the same nulling precoder", func() error {
		f := testbed.RunFigure7(*seed)
		if len(f.BERCOPA) == 0 {
			b.WriteString("<p>(no illustrative topology found)</p>")
			return nil
		}
		ch := viz.Chart{Title: fmt.Sprintf("COPA %s %.1f Mb/s vs NoPA %s %.1f Mb/s",
			f.COPAMCS, f.COPAMbps, f.NoPAMCS, f.NoPAMbps),
			XLabel: "subcarrier", YLabel: "uncoded BER", LogY: true}
		copaS := viz.Series{Name: "COPA", Dots: true}
		nopaS := viz.Series{Name: "NoPA", Dots: true}
		for k := range f.BERCOPA {
			if !f.Dropped[k] && f.BERCOPA[k] > 1e-12 {
				copaS.X = append(copaS.X, float64(k))
				copaS.Y = append(copaS.Y, f.BERCOPA[k])
			}
			if f.BERNoPA[k] > 1e-12 {
				nopaS.X = append(nopaS.X, float64(k))
				nopaS.Y = append(nopaS.Y, f.BERNoPA[k])
			}
		}
		ch.Series = []viz.Series{copaS, nopaS}
		b.WriteString(ch.SVG())
		drops := 0
		for _, d := range f.Dropped {
			if d {
				drops++
			}
		}
		fmt.Fprintf(&b, "<p>COPA drops %d subcarriers (vertical gaps). Paper: 8 drops, 32.4 vs 12.6 Mb/s.</p>", drops)
		return nil
	})

	section("Figure 9 — topology scatter", func() error {
		f := testbed.RunFigure9(*seed, *topologies)
		ch := viz.Chart{Title: "Interference vs signal power", XLabel: "signal (dBm)", YLabel: "interference (dBm)"}
		ch.Series = []viz.Series{
			{Name: "clients", X: f.SignalDBm, Y: f.InterferenceDBm, Dots: true},
			{Name: "x = y", X: []float64{-70, -30}, Y: []float64{-70, -30}, Color: "#999"},
		}
		b.WriteString(ch.SVG())
		return nil
	})

	scenarioSection := func(title string, sc channel.Scenario, deltaDB float64, paper map[string]float64) func() error {
		return func() error {
			cfg := testbed.DefaultConfig(*seed)
			cfg.Topologies = *topologies
			cfg.InterferenceDeltaDB = deltaDB
			cfg.SkipCOPAPlus = *skipPlus
			res, err := testbed.RunScenario(context.Background(), sc, cfg)
			if err != nil {
				return err
			}
			ch := viz.Chart{Title: title, XLabel: "aggregate throughput (Mb/s)", YLabel: "CDF"}
			schemes := make([]string, 0, len(res.PerTopology))
			for s := range res.PerTopology {
				schemes = append(schemes, s)
			}
			sort.Strings(schemes)
			for _, scheme := range schemes {
				s := viz.Series{Name: scheme, Step: true}
				for _, pt := range testbed.CDF(res.PerTopology[scheme]) {
					s.X = append(s.X, pt.Value/1e6)
					s.Y = append(s.Y, pt.P)
				}
				ch.Series = append(ch.Series, s)
			}
			b.WriteString(ch.SVG())
			b.WriteString(`<table><tr><th>scheme</th><th>mean (Mb/s)</th><th class="paper">paper</th></tr>`)
			for _, scheme := range testbed.AllSchemes {
				vals, ok := res.PerTopology[scheme]
				if !ok {
					continue
				}
				ref := "—"
				if p, ok := paper[scheme]; ok {
					ref = fmt.Sprintf("%.1f", p)
				}
				fmt.Fprintf(&b, `<tr><td>%s</td><td>%.1f</td><td class="paper">%s</td></tr>`,
					scheme, testbed.Mean(vals)/1e6, ref)
			}
			b.WriteString(`</table>`)
			return nil
		}
	}

	section("Figure 10 — 1×1 scenario", scenarioSection("Throughput CDF, 1x1", channel.Scenario1x1, 0, map[string]float64{
		testbed.SchemeCSMA: 47.7, testbed.SchemeCOPASeq: 51.6,
		testbed.SchemeCOPAFair: 53.3, testbed.SchemeCOPA: 54.7,
		testbed.SchemeCOPAPF: 53.7, testbed.SchemeCOPAP: 55.0,
	}))
	section("Figure 11 — 4×2 constrained", scenarioSection("Throughput CDF, 4x2", channel.Scenario4x2, 0, map[string]float64{
		testbed.SchemeCSMA: 110.1, testbed.SchemeCOPASeq: 110.4, testbed.SchemeNull: 83.1,
		testbed.SchemeCOPAFair: 123.9, testbed.SchemeCOPA: 128.1,
		testbed.SchemeCOPAPF: 132.0, testbed.SchemeCOPAP: 136.2,
	}))
	section("Figure 12 — 4×2, interference −10 dB", scenarioSection("Throughput CDF, 4x2 weak interference", channel.Scenario4x2, -10, map[string]float64{
		testbed.SchemeCSMA: 110.1, testbed.SchemeCOPASeq: 110.4, testbed.SchemeNull: 131.7,
		testbed.SchemeCOPAFair: 175.8, testbed.SchemeCOPA: 178.8,
		testbed.SchemeCOPAPF: 184.4, testbed.SchemeCOPAP: 185.9,
	}))
	section("Figure 13 — 3×2 overconstrained", scenarioSection("Throughput CDF, 3x2", channel.Scenario3x2, 0, map[string]float64{
		testbed.SchemeCSMA: 104.1, testbed.SchemeCOPASeq: 108.9, testbed.SchemeNull: 87.4,
		testbed.SchemeCOPAFair: 117.8, testbed.SchemeCOPA: 121.6,
		testbed.SchemeCOPAPF: 122.9, testbed.SchemeCOPAP: 126.4,
	}))

	section("Figure 14 — multiple decoders", func() error {
		n := *topologies
		if n > 12 {
			n = 12 // two full scenario runs per antenna configuration
		}
		f, err := testbed.RunFigure14(context.Background(), *seed, n)
		if err != nil {
			return err
		}
		b.WriteString(`<table><tr><th>scheme</th><th>1×1</th><th>4×2</th><th>3×2</th></tr>`)
		for _, scheme := range testbed.Figure14Schemes {
			fmt.Fprintf(&b, `<tr><td>%s</td>`, scheme)
			for _, sc := range []string{"1x1", "4x2", "3x2"} {
				fmt.Fprintf(&b, `<td>%+.1f%%</td>`, f.Improvement[sc][scheme])
			}
			b.WriteString(`</tr>`)
		}
		b.WriteString(`</table><p>% improvement over 1-decoder CSMA.</p>`)
		return nil
	})

	fmt.Fprintf(&b, "<p><em>Generated %s.</em></p></body></html>", time.Now().UTC().Format(time.RFC3339))

	if failed {
		return 1
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		logger.Error("write report failed", "path", *out, "err", err)
		return 1
	}
	fmt.Printf("wrote %s (%d KiB)\n", *out, len(b.String())/1024)
	return 0
}
