// Benchmarks for the mobility subsystem (internal/drift): the cost of
// one channel-evolution tick, and the controller's incremental
// re-allocation against the cold renegotiation compute it replaces.
// Both are in the copabench perf gate (BENCH_baseline.json).
package copa

import (
	"testing"
	"time"

	"copa/internal/channel"
	"copa/internal/drift"
	"copa/internal/power"
	"copa/internal/precoding"
)

// BenchmarkDriftStep times one 5 ms pedestrian tick of the tap-evolution
// model: four H links plus the AP link advanced under the Jakes-shaped
// AR(1) per-tap filter, each from its own stateless rng stream.
func BenchmarkDriftStep(b *testing.B) {
	dep := channel.DeploymentAt(benchSeed, channel.Scenario4x2, 0)
	model := drift.NewModel(dep, drift.Pedestrian.SpeedMps, benchSeed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Advance(5 * time.Millisecond)
	}
}

// reallocSetup builds the state the controller's incremental path solves
// from: precoders negotiated at t=0, the t=0 allocation whose drop
// levels seed the hints, and fresh estimates after 10 ms of pedestrian
// drift.
func reallocSetup(b testing.TB) (senders [2]power.SenderCSI, precs [2]*precoding.Precoder) {
	b.Helper()
	dep := channel.DeploymentAt(benchSeed, channel.Scenario4x2, 0)
	model := drift.NewModel(dep, drift.Pedestrian.SpeedMps, benchSeed)
	imp := channel.DefaultImpairments()
	budget := channel.TotalTxBudgetMW()

	base := [2][2]*channel.Link{}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			base[i][j] = model.MeasureCSI(imp, i, j)
		}
	}
	for i := 0; i < 2; i++ {
		p, err := precoding.Nulling(base[i][i], base[i][1-i], 2)
		if err != nil {
			b.Fatal(err)
		}
		precs[i] = p
	}
	model.Advance(5 * time.Millisecond)
	model.Advance(5 * time.Millisecond)
	senders = [2]power.SenderCSI{
		{Own: model.MeasureCSI(imp, 0, 0), Cross: model.MeasureCSI(imp, 0, 1), Precoder: precs[0], BudgetMW: budget},
		{Own: model.MeasureCSI(imp, 1, 1), Cross: model.MeasureCSI(imp, 1, 0), Precoder: precs[1], BudgetMW: budget},
	}
	return senders, precs
}

// BenchmarkIncrementalRealloc times the controller's incremental path on
// drifted estimates: certify the cached nulling plans, then re-solve
// with drop-level hints and Patience early stopping — the trajectory
// typically peaks within the first sweeps, so the solve runs a fraction
// of the cold sweep count.
func BenchmarkIncrementalRealloc(b *testing.B) {
	senders, precs := reallocSetup(b)
	cfg := power.DefaultConfig()
	cfg.WarmDrops = [][]int{make([]int, 2), make([]int, 2)}
	cfg.Patience = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 2; j++ {
			if drift.NullResidualDB(senders[j].Cross, precs[j]) > 0 {
				b.Fatal("certificate degenerate")
			}
		}
		if res := power.Concurrent(senders, cfg); res.Aggregate() <= 0 {
			b.Fatal("degenerate allocation")
		}
	}
}

// BenchmarkColdRealloc is the renegotiation compute the incremental path
// replaces: recompute both nulling precoders from scratch and run the
// full 12-sweep cold solve on the same drifted estimates.
func BenchmarkColdRealloc(b *testing.B) {
	senders, _ := reallocSetup(b)
	cfg := power.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 2; j++ {
			if _, err := precoding.Nulling(senders[j].Own, senders[j].Cross, 2); err != nil {
				b.Fatal(err)
			}
		}
		if res := power.Concurrent(senders, cfg); res.Aggregate() <= 0 {
			b.Fatal("degenerate allocation")
		}
	}
}

// TestIncrementalReallocSpeedup pins the acceptance criterion in the
// regular test suite (not just the perf gate): on pedestrian-drifted
// estimates the incremental solve must stop within a third of the cold
// solve's Jacobi sweeps (per-sweep cost is identical, so the sweep
// ratio is the wall-clock ratio minus the precoder recompute the
// incremental path also skips).
func TestIncrementalReallocSpeedup(t *testing.T) {
	senders, _ := reallocSetup(t)
	cfg := power.DefaultConfig()
	cold := power.Concurrent(senders, cfg)
	cfg.WarmDrops = [][]int{make([]int, 2), make([]int, 2)}
	cfg.Patience = 2
	incr := power.Concurrent(senders, cfg)
	if cold.Iterations != 12 {
		t.Fatalf("cold solve ran %d sweeps, want the full 12", cold.Iterations)
	}
	if 3*incr.Iterations > cold.Iterations {
		t.Fatalf("incremental solve ran %d sweeps vs cold %d: less than the required 3× reduction",
			incr.Iterations, cold.Iterations)
	}
}
