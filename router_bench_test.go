package copa

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"copa/internal/api"
	"copa/internal/router"
	"copa/internal/serve"
)

// inprocTransport serves backend requests by calling the handler
// directly — no sockets, so the benchmark measures the router's own
// per-request cost (shard-key parse, ring walk, hedging machinery,
// body forwarding), not the kernel's.
type inprocTransport struct{ h http.Handler }

func (t inprocTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// BenchmarkRouterCachedHit times the front tier's steady state: a
// warm-cache allocation proxied through the full router path —
// admission, shard-key decode, consistent-hash preference, one backend
// attempt, verbatim body forward. Allocations per op are deterministic
// (fixed hedge budget, no health loop, in-process backend) and gated
// by copabench next to the backend's own zero-alloc cache hit.
func BenchmarkRouterCachedHit(b *testing.B) {
	srv := serve.New(serve.Config{Workers: 1, Coherence: time.Hour})
	defer srv.Close()
	backend := api.NewHandler(srv)

	rt, err := router.New(router.Config{
		Backends:       []string{"http://backend-a:1", "http://backend-b:1"},
		Coherence:      time.Hour,
		HedgeBudget:    10 * time.Second, // fixed: no adaptive recompute in the loop
		HealthInterval: -1,               // no probe goroutine
		Transport:      inprocTransport{h: backend},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	front := rt.Handler()

	const body = `{"scenario":"4x2","seed":11,"mode":"max"}`
	do := func() int {
		req := httptest.NewRequest(http.MethodPost, "http://router/v1/allocate", strings.NewReader(body))
		req.Header.Set("Content-Type", api.ContentTypeJSON)
		rec := httptest.NewRecorder()
		front.ServeHTTP(rec, req)
		return rec.Code
	}
	// Prime the backend cache, then collect the setup garbage so a GC
	// cycle mid-loop does not bill its allocations to the steady state.
	for i := 0; i < 2; i++ {
		if code := do(); code != http.StatusOK {
			b.Fatalf("priming request: status %d", code)
		}
	}
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := do(); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
	b.StopTimer()
}

// BenchmarkWireBinaryRoundTrip times one encode+decode of an
// allocation request and its response through the compact binary
// codec — the marshal cost a latency-sensitive client pays instead of
// JSON (compare BenchmarkRouterCachedHit's JSON path).
func BenchmarkWireBinaryRoundTrip(b *testing.B) {
	req := api.AllocateRequest{Scenario: "4x2", Seed: 11, Mode: "max", Impairments: "default", CSIAgeMS: 3}
	resp := api.AllocateResponse{
		Cached:    true,
		AgeBucket: 1,
		Selected:  api.Outcome{Strategy: "Conc-Null", Concurrent: true, AggregateBps: 3e6},
		Outcomes: map[string]api.Outcome{
			"CSMA":      {Strategy: "CSMA", AggregateBps: 1e6},
			"Conc-Null": {Strategy: "Conc-Null", Concurrent: true, AggregateBps: 3e6},
			"Conc-SDA":  {Strategy: "Conc-SDA", Concurrent: true, SDA: true, AggregateBps: 2.5e6},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eb, err := api.EncodeRequestBinary(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := api.DecodeRequestBinary(eb); err != nil {
			b.Fatal(err)
		}
		rb, err := api.EncodeResponseBinary(resp)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := api.DecodeResponseBinary(rb); err != nil {
			b.Fatal(err)
		}
	}
}
