#!/bin/sh
# router_smoke.sh — sharded front-tier smoke test (DESIGN §15).
#
# Boots three real copaserve backends and one coparouter over loopback,
# then proves the tier's three contracts end to end:
#
#   1. Byte identity: canonical cached responses fetched through the
#      router cmp equal to the same responses fetched from a single
#      copaserve directly — the router forwards backend bytes verbatim
#      and sharding never changes an answer.
#   2. Loss-free degradation: mixed-priority load keeps running while
#      one of the three backends is killed mid-run; copaload exits
#      non-zero if any accepted interactive request fails.
#   3. The router's health endpoint converges to 2/3 healthy backends
#      after the kill.
set -eu

DIR="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$DIR"' EXIT INT TERM

echo "router-smoke: building binaries"
go build -o "$DIR/copaserve" ./cmd/copaserve
go build -o "$DIR/coparouter" ./cmd/coparouter
go build -o "$DIR/copaload" ./cmd/copaload

# fetch <url>: GET with whichever of curl/wget exists.
fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$1"
    else
        wget -qO- "$1"
    fi
}

# await_file <path>: wait for an -addr-file handshake.
await_file() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        [ $i -gt 300 ] && { echo "router-smoke: $1 never appeared" >&2; exit 1; }
        sleep 0.1
    done
}

echo "router-smoke: starting 3 copaserve backends"
BACKENDS=""
for n in 1 2 3; do
    "$DIR/copaserve" -listen 127.0.0.1:0 -addr-file "$DIR/b$n.url" -workers 2 &
    PIDS="$PIDS $!"
    eval "B${n}_PID=$!"
done
for n in 1 2 3; do
    await_file "$DIR/b$n.url"
    url="$(cat "$DIR/b$n.url")"
    BACKENDS="${BACKENDS:+$BACKENDS,}$url"
done

echo "router-smoke: starting coparouter over $BACKENDS"
"$DIR/coparouter" -listen 127.0.0.1:0 -addr-file "$DIR/router.url" \
    -backends "$BACKENDS" -health-interval 100ms &
ROUTER_PID=$!
PIDS="$PIDS $ROUTER_PID"
await_file "$DIR/router.url"
ROUTER="$(cat "$DIR/router.url")"

echo "router-smoke: byte-identity cmp (router vs direct backend)"
# The same distinct keys, dumped twice: once through the router (keys
# shard across all three caches), once direct from backend 1. Cached
# responses must be byte-identical — worlds are deterministic and the
# router forwards backend bytes verbatim.
"$DIR/copaload" -backends "$ROUTER" -canon-out "$DIR/canon-router" -distinct 12
"$DIR/copaload" -backends "$(cat "$DIR/b1.url")" -canon-out "$DIR/canon-direct" -distinct 12
cmp "$DIR/canon-router" "$DIR/canon-direct" || {
    echo "router-smoke: ROUTED RESPONSES DIFFER FROM DIRECT COPASERVE" >&2
    exit 1
}

echo "router-smoke: mixed-priority load with a mid-run backend kill"
"$DIR/copaload" -backends "$ROUTER" -n 400 -clients 8 -batch-fraction 0.25 \
    -distinct 24 > "$DIR/load.json" &
LOAD_PID=$!
sleep 1
echo "router-smoke: killing backend 3 (SIGKILL — no graceful drain)"
kill -9 "$B3_PID"
wait "$LOAD_PID" || {
    echo "router-smoke: INTERACTIVE REQUESTS LOST DURING BACKEND KILL" >&2
    cat "$DIR/load.json" >&2
    exit 1
}
cat "$DIR/load.json"

echo "router-smoke: waiting for the router to mark the dead backend down"
i=0
until fetch "$ROUTER/v1/healthz" 2>/dev/null | grep -q '"healthy":2'; do
    i=$((i + 1))
    [ $i -gt 100 ] && { echo "router-smoke: router never saw the backend die" >&2; exit 1; }
    sleep 0.1
done

echo "router-smoke: post-kill traffic still loss-free on 2/3 backends"
"$DIR/copaload" -backends "$ROUTER" -n 100 -clients 4 -distinct 24 > "$DIR/load2.json" || {
    echo "router-smoke: REQUESTS FAILED AFTER BACKEND LOSS" >&2
    cat "$DIR/load2.json" >&2
    exit 1
}

echo "router-smoke: PASS"
