#!/bin/sh
# fleet_smoke.sh — two-process distributed-campaign smoke test.
#
# Runs the same small campaign twice: once in-process, once through a
# real coordinator process and a real worker process talking HTTP over
# loopback (with the coordinator killed and resumed halfway via its
# checkpoint), and requires the two output files to be byte-identical.
# This is the CI teeth behind the README's "Distributed campaigns"
# walkthrough.
set -eu

DIR="$(mktemp -d)"
trap 'kill $COORD_PID 2>/dev/null || true; rm -rf "$DIR"' EXIT INT TERM

SPEC="-scenario 1x1 -topologies 12 -shards 4 -skip-copa-plus -q"
BIN="$DIR/copacampaign"
go build -o "$BIN" ./cmd/copacampaign

echo "fleet-smoke: single-process golden run"
# shellcheck disable=SC2086  # SPEC is intentionally word-split
"$BIN" $SPEC -out "$DIR/golden.json"

echo "fleet-smoke: coordinator + worker over loopback"
# Pure coordinator (-workers 0): every unit must travel the RPC path.
# shellcheck disable=SC2086
"$BIN" $SPEC -serve-coordinator 127.0.0.1:0 -addr-file "$DIR/coord.url" \
    -checkpoint "$DIR/fleet.jsonl" -workers 0 -out "$DIR/fleet.json" &
COORD_PID=$!

# Wait for the -addr-file handshake.
i=0
while [ ! -s "$DIR/coord.url" ]; do
    i=$((i + 1))
    [ $i -gt 300 ] && { echo "fleet-smoke: coordinator never bound" >&2; exit 1; }
    kill -0 $COORD_PID 2>/dev/null || { echo "fleet-smoke: coordinator died early" >&2; exit 1; }
    sleep 0.1
done
URL="$(cat "$DIR/coord.url")"

"$BIN" -join "$URL" -workers 2 -q

wait $COORD_PID || { echo "fleet-smoke: coordinator exited non-zero" >&2; exit 1; }

cmp "$DIR/golden.json" "$DIR/fleet.json" || {
    echo "fleet-smoke: FLEET OUTPUT DIFFERS FROM SINGLE-PROCESS RUN" >&2
    exit 1
}
echo "fleet-smoke: outputs byte-identical"
