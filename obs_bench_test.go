// Benchmarks comparing the instrumented hot path against the same path
// with observability gated off (obs.Disabled): the handle-based design
// must keep instrumentation within noise of the disabled baseline.
//
//	go test -bench=EquiSNR -benchmem
package copa

import (
	"context"
	"io"
	"testing"

	"copa/internal/channel"
	"copa/internal/obs"
	"copa/internal/ofdm"
	"copa/internal/power"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// benchCoef is a fixed 52-subcarrier coefficient vector for the inner
// allocator benchmarks.
var benchCoef = func() []float64 {
	src := rng.New(99)
	coef := make([]float64, ofdm.NumSubcarriers)
	for k := range coef {
		coef[k] = 100 + 900*src.Float64()
	}
	return coef
}()

func benchEquiSNR(b *testing.B) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		power.EquiSNR(benchCoef, 10)
	}
}

// BenchmarkEquiSNRInstrumented times Algorithm 1 with metrics on (the
// default): one counter increment plus one histogram observation per call.
func BenchmarkEquiSNRInstrumented(b *testing.B) { benchEquiSNR(b) }

// BenchmarkEquiSNRDisabled is the obs.Disabled() baseline; compare with
// BenchmarkEquiSNRInstrumented to bound instrumentation overhead (<5%).
func BenchmarkEquiSNRDisabled(b *testing.B) {
	defer obs.Disabled()()
	benchEquiSNR(b)
}

func benchEvaluateAll(b *testing.B) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.New(int64(i))
		dep := channel.NewDeployment(src.Split(1), channel.Scenario4x2)
		ev := strategy.NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
		if _, err := ev.EvaluateAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateAllInstrumented times the full strategy pipeline with
// spans, timers, and counters active.
func BenchmarkEvaluateAllInstrumented(b *testing.B) { benchEvaluateAll(b) }

// BenchmarkEvaluateAllDisabled is the same pipeline with the gate off.
func BenchmarkEvaluateAllDisabled(b *testing.B) {
	defer obs.Disabled()()
	benchEvaluateAll(b)
}

// BenchmarkSpanOverheadEnabled times one hierarchical child span
// (start + end + ring record) under a live sampled trace — the
// per-stage cost a traced request pays at every pipeline hop.
func BenchmarkSpanOverheadEnabled(b *testing.B) {
	obs.SetTraceSampling(1)
	ctx, root := obs.StartSpan(context.Background(), "bench.root")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs.ChildSpan(ctx, "bench.child").End()
	}
}

// BenchmarkSpanOverheadDisabled is the same call pattern with the obs
// gate off: the instrumentation an untraced deployment carries. Pinned
// at zero allocs/op by the perf gate — if this allocates, every
// library call site regressed at once.
func BenchmarkSpanOverheadDisabled(b *testing.B) {
	defer obs.Disabled()()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spanCtx, span := obs.StartSpan(ctx, "bench.span")
		_ = spanCtx
		span.End()
	}
}

// BenchmarkOpenMetricsExposition snapshots and renders a registry of
// realistic size (the cost of one /metrics scrape) — a fixed synthetic
// registry rather than the live one, so allocs/op is deterministic for
// the perf gate regardless of what ran before in the bench binary.
func BenchmarkOpenMetricsExposition(b *testing.B) {
	r := obs.NewRegistry()
	src := rng.New(7)
	for i := 0; i < 60; i++ {
		r.Counter(benchMetricName("copa.bench.counter", i)).Add(uint64(src.Intn(1 << 20)))
	}
	for i := 0; i < 20; i++ {
		r.Gauge(benchMetricName("copa.bench.gauge", i)).Set(src.Float64() * 1000)
	}
	for i := 0; i < 10; i++ {
		h := r.Histogram(benchMetricName("copa.bench.hist", i), obs.ExpBuckets(1e-6, 4, 10))
		for j := 0; j < 100; j++ {
			h.Observe(src.Float64())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := obs.WriteOpenMetrics(io.Discard, r.Snapshot()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMetricName(prefix string, i int) string {
	return prefix + string(rune('a'+i/10)) + string(rune('a'+i%10))
}
