// Benchmarks comparing the instrumented hot path against the same path
// with observability gated off (obs.Disabled): the handle-based design
// must keep instrumentation within noise of the disabled baseline.
//
//	go test -bench=EquiSNR -benchmem
package copa

import (
	"testing"

	"copa/internal/channel"
	"copa/internal/obs"
	"copa/internal/ofdm"
	"copa/internal/power"
	"copa/internal/rng"
	"copa/internal/strategy"
)

// benchCoef is a fixed 52-subcarrier coefficient vector for the inner
// allocator benchmarks.
var benchCoef = func() []float64 {
	src := rng.New(99)
	coef := make([]float64, ofdm.NumSubcarriers)
	for k := range coef {
		coef[k] = 100 + 900*src.Float64()
	}
	return coef
}()

func benchEquiSNR(b *testing.B) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		power.EquiSNR(benchCoef, 10)
	}
}

// BenchmarkEquiSNRInstrumented times Algorithm 1 with metrics on (the
// default): one counter increment plus one histogram observation per call.
func BenchmarkEquiSNRInstrumented(b *testing.B) { benchEquiSNR(b) }

// BenchmarkEquiSNRDisabled is the obs.Disabled() baseline; compare with
// BenchmarkEquiSNRInstrumented to bound instrumentation overhead (<5%).
func BenchmarkEquiSNRDisabled(b *testing.B) {
	defer obs.Disabled()()
	benchEquiSNR(b)
}

func benchEvaluateAll(b *testing.B) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.New(int64(i))
		dep := channel.NewDeployment(src.Split(1), channel.Scenario4x2)
		ev := strategy.NewEvaluator(dep, channel.DefaultImpairments(), src.Split(2))
		if _, err := ev.EvaluateAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateAllInstrumented times the full strategy pipeline with
// spans, timers, and counters active.
func BenchmarkEvaluateAllInstrumented(b *testing.B) { benchEvaluateAll(b) }

// BenchmarkEvaluateAllDisabled is the same pipeline with the gate off.
func BenchmarkEvaluateAllDisabled(b *testing.B) {
	defer obs.Disabled()()
	benchEvaluateAll(b)
}
