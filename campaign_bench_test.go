package copa

import (
	"context"
	"testing"

	"copa/internal/campaign"
	"copa/internal/channel"
)

// BenchmarkCampaignUnit times one complete single-unit campaign — the
// engine's scheduling overhead plus one work unit's topology
// evaluations on the worker's reused arena. It is the per-unit cost a
// large sweep pays Units() times, and its allocs/op is gated by
// copabench: the evaluation inside the unit must stay on the
// allocation-free hot path (DESIGN §8), so growth here means a
// regression in either the engine bookkeeping or the kernel.
func BenchmarkCampaignUnit(b *testing.B) {
	spec := campaign.Spec{
		Seed:         benchSeed,
		Scenario:     channel.Scenario1x1,
		Topologies:   1,
		Shards:       1,
		Profiles:     campaign.DefaultProfiles(),
		AgeBuckets:   1,
		SkipCOPAPlus: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(context.Background(), spec, campaign.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Units != 1 {
			b.Fatalf("units = %d", res.Units)
		}
	}
	b.StopTimer()
}
