package copa_test

import (
	"context"
	"fmt"
	"time"

	"copa"
)

// Draw a reproducible topology and inspect its links.
func ExampleNewDeployment() {
	dep := copa.NewDeployment(42, copa.Scenario4x2)
	fmt.Println("scenario:", dep.Scenario.Name)
	fmt.Println("AP antennas:", dep.H[0][0].NTx())
	fmt.Println("client antennas:", dep.H[0][0].NRx())
	// Output:
	// scenario: 4x2
	// AP antennas: 4
	// client antennas: 2
}

// Evaluate every strategy on a topology and apply COPA's decision rule.
func ExampleSelect() {
	dep := copa.NewDeployment(7, copa.Scenario4x2)
	ev := copa.NewEvaluator(dep, copa.DefaultImpairments(), 1)
	outs, err := ev.EvaluateAll()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	max := copa.Select(copa.ModeMax, outs)
	fair := copa.Select(copa.ModeFair, outs)
	fmt.Println("strategies evaluated:", len(outs))
	fmt.Println("max beats seq:", max.PredictedAggregate() >= outs[copa.KindCOPASeq].PredictedAggregate())
	fmt.Println("fair is admissible:", fair.Predicted[0] >= outs[copa.KindCOPASeq].Predicted[0]-1)
	// Output:
	// strategies evaluated: 5
	// max beats seq: true
	// fair is admissible: true
}

// Run the full over-the-air ITS exchange between two COPA APs.
func ExamplePair_RunExchange() {
	dep := copa.NewDeployment(42, copa.Scenario4x2)
	pair := copa.NewPair(dep, copa.DefaultImpairments(), 30*time.Millisecond, copa.ModeFair, 7)
	pair.MeasureCSI()
	session, err := pair.RunExchange(4000)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("frames exchanged: 3")
	fmt.Println("leader elected:", session.LeaderIdx == 0 || session.LeaderIdx == 1)
	fmt.Println("control bytes > 500:", session.ControlBytes > 500)
	// Output:
	// frames exchanged: 3
	// leader elected: true
	// control bytes > 500: true
}

// Allocate a power budget across subcarriers with Algorithm 1.
func ExampleEquiSNR() {
	// Four strong subcarriers and one hopeless one.
	coef := []float64{1000, 900, 1100, 950, 0.001}
	alloc := copa.EquiSNR(coef, 10)
	fmt.Println("dropped:", alloc.Dropped)
	fmt.Printf("power on the dead subcarrier: %.0f\n", alloc.PowerMW[4])
	// Output:
	// dropped: 1
	// power on the dead subcarrier: 0
}

// Inspect the built-in instrumentation after running an experiment: every
// pipeline layer records counters and latency histograms into a
// process-wide registry that Metrics() snapshots.
func ExampleMetrics() {
	cfg := copa.DefaultExperimentConfig(1)
	cfg.Topologies = 2
	cfg.SkipCOPAPlus = true
	if _, err := copa.RunScenario(context.Background(), copa.Scenario4x2, cfg); err != nil {
		fmt.Println("error:", err)
		return
	}

	m := copa.Metrics()
	fmt.Println("topologies evaluated:", m.Counters["copa.testbed.topologies"] >= 2)

	// Equi-SINR iteration counts (Fig. 6 loop) as a distribution.
	iters := m.Histograms["copa.power.alloc_iters"]
	fmt.Println("allocations recorded:", iters.Count > 0)
	fmt.Println("median iterations <= 12:", iters.Quantile(0.5) <= 12)

	// Per-strategy evaluation latency, measured in seconds.
	lat := m.Timers["copa.strategy.eval_seconds.conc_null"]
	fmt.Println("nulling eval latency observed:", lat.Count > 0 && lat.Mean() > 0)
	// Output:
	// topologies evaluated: true
	// allocations recorded: true
	// median iterations <= 12: true
	// nulling eval latency observed: true
}

// Compute the paper's Table 1 for custom coherence times.
func ExampleOverheadModel() {
	m := copa.DefaultOverheadModel()
	rows := m.Table1(4*time.Millisecond, time.Second)
	fmt.Println("rows:", len(rows))
	fmt.Println("overhead falls with coherence:", rows[0].COPAConc > rows[1].COPAConc)
	// Output:
	// rows: 2
	// overhead falls with coherence: true
}
