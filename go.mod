module copa

go 1.22
