package copa

import (
	"regexp"
	"testing"

	// Blank imports pull in metric registrations from packages the
	// facade does not re-export, so the lint sees the whole registry.
	_ "copa/internal/campaign"
	_ "copa/internal/medium"
	_ "copa/internal/router"
)

// metricNameRE is the repo's metric naming convention: dot-separated
// lowercase segments rooted at "copa.", each segment starting with a
// letter ("copa.serve.queue_seconds", "copa.campaign.shard_progress.s3").
// OpenMetrics exposition mangles the dots to underscores, so anything
// matching here is also a valid Prometheus family name.
var metricNameRE = regexp.MustCompile(`^copa(\.[a-z][a-z0-9_]*)+$`)

// TestMetricNameLint walks every metric registered by any imported
// package and rejects names outside the convention. New metrics that
// fail here would otherwise surface as inconsistent or unscrapable
// families on /metrics. Wired into `make check` and CI.
func TestMetricNameLint(t *testing.T) {
	names := Metrics().Names()
	if len(names) == 0 {
		t.Fatal("no metrics registered; lint has nothing to check")
	}
	for _, n := range names {
		if !metricNameRE.MatchString(n) {
			t.Errorf("metric %q violates naming convention %s", n, metricNameRE)
		}
	}

	// The front tier's and the serve cache's metric families must stay
	// registered under their documented prefixes — dashboards and the
	// router smoke test's healthz greps depend on these exact names.
	registered := make(map[string]bool, len(names))
	for _, n := range names {
		registered[n] = true
	}
	for _, want := range []string{
		"copa.router.requests",
		"copa.router.admitted_interactive",
		"copa.router.admitted_batch",
		"copa.router.shed_interactive",
		"copa.router.shed_batch",
		"copa.router.hedges",
		"copa.router.hedge_wins",
		"copa.router.hedge_budget_seconds",
		"copa.router.retries",
		"copa.router.backends_exhausted",
		"copa.router.backends_healthy",
		"copa.router.inflight",
		"copa.serve.cache.hits",
		"copa.serve.cache.misses",
		"copa.serve.cache.evictions",
		"copa.serve.cache.entries",
	} {
		if !registered[want] {
			t.Errorf("metric %q is not registered", want)
		}
	}
}
